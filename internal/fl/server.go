// Package fl implements the federated-learning engine: the aggregation
// server (Algorithm 1's Central_Server), the client local-training loop,
// and the round driver that couples them with the netem timing model and a
// synchronization strategy (FedAvg, CMFL, APF, or FedSU).
package fl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrEvicted reports that a client was evicted from the session after
// missing a collective deadline; its late submissions are rejected rather
// than corrupting a later round. Match with errors.Is.
var ErrEvicted = errors.New("evicted from session")

// EvictedError carries the evicted client's id; it unwraps to ErrEvicted.
type EvictedError struct {
	ClientID int
}

// Error implements error. The "evicted from session" marker is part of the
// wire contract: net/rpc flattens errors to strings, and flrpc recovers
// the typed error by matching it.
func (e *EvictedError) Error() string {
	return fmt.Sprintf("fl: client %d evicted from session (missed collective deadline)", e.ClientID)
}

// Unwrap makes errors.Is(err, ErrEvicted) hold.
func (e *EvictedError) Unwrap() error { return ErrEvicted }

// Server is the in-process aggregation service. Each collective
// (model-average or error-average, per round) is a barrier: every client of
// the round must submit before any receives the element-wise mean over the
// contributing participants.
//
// Submission order across clients is arbitrary (clients run in goroutines),
// but results are deterministic: contributions combine in the canonical
// rank-aligned pairwise order of the fold node (fold.go) — a fixed
// balanced binary tree over ascending client-id ranks — and the parallel
// fold shards over the parameter index so every element sees the exact
// same addition sequence at every worker count. The same canonical order
// is what makes a hierarchical tree run (tree.go) bit-identical to this
// flat server.
//
// # Streaming aggregation
//
// The server never holds its mutex across O(model) work. A submission is
// copied into a pooled staging buffer outside the lock, published to the
// collective's fold state, and folded into the running sum as soon as every
// lower client id has resolved (submitted, abstained, or been evicted) — the
// "frontier". Folding happens under a per-collective fold lock on whichever
// client goroutine gets there first, parallelized over the parameter
// dimension by internal/par, so ingest overlaps with stragglers' uploads
// and the barrier-close step only has to drain whatever is still staged.
//
// # Fault tolerance
//
// With a deadline set (SetDeadline), a barrier that does not fill within
// the deadline of its first submission closes with the submissions it has:
// the missing clients are evicted from the roster, the mean is computed
// over the actual contributors, and later submissions from evicted clients
// fail with ErrEvicted. An alive probe (SetAliveProbe) grants one deadline
// extension when a missing client still heartbeats — distinguishing slow
// from dead — so the worst-case barrier span is two deadlines. With no
// deadline (the default) barriers block until they fill, exactly the
// pre-fault-tolerance behaviour.
type Server struct {
	mu           sync.Mutex
	numClients   int
	participants map[int]bool
	round        int
	ops          map[opKey]*op

	// opFree recycles completed op shells (maps, slices, fold scratch)
	// across rounds so a steady-state collective allocates nothing but its
	// done channel and result.
	opFree []*op

	// roster is the set of client ids expected at every barrier; nil means
	// the implied roster {0..numClients-1}. Evicted ids are removed.
	roster  map[int]bool
	evicted map[int]bool

	deadline   time.Duration
	aliveProbe func(clientID int) bool
	idempotent bool

	// Cumulative fault counters (see EvictionCount / TimeoutCount).
	evictions int
	timeouts  int

	// Buffered-async aggregation mode (see SetAsync / server_async.go).
	// When enabled, submissions bypass the barrier machinery entirely:
	// they fold into per-kind weighted accumulators as they arrive and the
	// global applies every acfg.K contributions.
	async  bool
	acfg   AsyncConfig
	amu    sync.Mutex
	achan  map[string]*asyncChan
	astale int
}

type opKey struct {
	round int
	kind  string
}

// Per-position submission status, published with atomic stores so the fold
// path can read it without the server mutex.
const (
	posPending uint32 = iota // not yet resolved
	posStaged                // contribution copied and staged
	posSkip                  // resolved without contributing (abstain, non-participant, evicted)
)

// foldGrain aligns parallel fold chunks; any value works for bit-identity
// (the per-element addition order never depends on chunking), this one just
// amortizes dispatch.
const foldGrain = 1024

// drainMinBatch keeps opportunistic mid-barrier drains from paying a fold
// pass per contribution: a drain that would fold fewer staged buffers than
// this leaves them for a later, larger batch (the completion drain takes
// everything).
const drainMinBatch = 4

type op struct {
	// Barrier bookkeeping, guarded by Server.mu.
	need      int
	subs      int
	submitted map[int]bool
	pending   map[int]bool
	finished  bool
	timer     *time.Timer
	extended  bool

	// gen increments every time this op shell is (re)armed by newOpLocked.
	// A deadline timer captures the generation it was armed for, and expire
	// ignores a firing whose generation no longer matches: a timer that
	// outlives its barrier (fires after the op returned to the free list,
	// or after the shell was recycled into a new collective — even one at
	// the same (round, kind) key, which a checkpoint replay can produce)
	// must be a no-op instead of evicting the new barrier's clients.
	gen uint64

	// fold is the streaming fold node (fold.go): the roster order, staged
	// contributions, stray handling, and the canonical pairwise reduction
	// all live there. The op contributes only barrier bookkeeping.
	fold *foldNode

	// Published before done closes; read by waiters after.
	result  []float64
	failure error
	done    chan struct{}
}

// NewServer constructs a server expecting numClients submissions per
// collective.
func NewServer(numClients int) *Server {
	return &Server{
		numClients:   numClients,
		participants: map[int]bool{},
		evicted:      map[int]bool{},
		ops:          map[opKey]*op{},
	}
}

// SetDeadline bounds every collective barrier: d after the first submission
// arrives, the barrier closes with whoever has submitted and evicts the
// rest. Zero (the default) disables the bound and restores blocking
// barriers. It must not be called while collectives are in flight.
func (s *Server) SetDeadline(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadline = d
}

// SetAliveProbe installs a liveness oracle consulted when a deadline
// expires: a missing-but-alive client (a slow straggler, per its
// heartbeats) buys the barrier one extension of the same deadline before
// eviction proceeds. A nil probe (the default) treats every missing client
// as dead.
func (s *Server) SetAliveProbe(probe func(clientID int) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aliveProbe = probe
}

// SetIdempotent makes duplicate submissions benign: a client resubmitting
// to a collective it already joined (a retry after a dropped connection)
// waits for and receives the collective result instead of an error. The
// first submission's values win. The default (false) keeps strict
// double-submit errors, which catch strategy bugs in-process.
func (s *Server) SetIdempotent(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idempotent = v
}

// SetRoster declares the client ids expected at every barrier, replacing
// the implied {0..numClients-1}. Already-evicted ids are ignored until
// readmitted. It must not be called while collectives are in flight.
func (s *Server) SetRoster(ids []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roster = make(map[int]bool, len(ids))
	for _, id := range ids {
		if !s.evicted[id] {
			s.roster[id] = true
		}
	}
}

// Readmit clears a client's evicted status (a rejoin after reconnecting).
// It does NOT edit the current roster: membership is declared by SetRoster
// (or the implied {0..numClients-1}), and the readmitted id re-enters at
// the next SetRoster that lists it (or the next op creation on the implied
// roster). The historical behaviour — injecting the id straight into the
// active roster — made later barriers of the in-flight session require a
// submission from a client the caller's roster never listed, which
// ghost-blocked the barrier when that client made no further calls; until
// the next SetRoster, a readmitted client's submissions count through the
// stray-contribution path instead.
func (s *Server) Readmit(clientID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.evicted, clientID)
}

// Evicted returns the currently evicted client ids in ascending order.
func (s *Server) Evicted() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.evicted))
	for id := range s.evicted {
		out = append(out, id)
	}
	sortInts(out)
	return out
}

// EvictionCount returns the cumulative number of deadline evictions.
func (s *Server) EvictionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// TimeoutCount returns the cumulative number of collectives closed by
// deadline expiry.
func (s *Server) TimeoutCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timeouts
}

// BeginRound declares the active round and the participation quorum: only
// listed clients' submissions contribute to averages this round (everyone
// still synchronizes and receives results). It also garbage-collects
// collectives from earlier rounds, recycling their op shells.
func (s *Server) BeginRound(round int, participants []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round = round
	clear(s.participants)
	for _, id := range participants {
		s.participants[id] = true
	}
	// Drop all completed collectives. BeginRound is only called when no
	// collective is in flight (every barrier of the previous round has
	// released its waiters, and waiters hold direct op pointers), and a
	// checkpoint restore may legitimately replay an earlier round index,
	// so the whole map is cleared rather than just older rounds. Finished
	// ops go back to the free list; an unfinished op (contract violation)
	// is dropped rather than recycled, since waiters may still hold it.
	for k, o := range s.ops {
		if o.timer != nil {
			o.timer.Stop()
			o.timer = nil
		}
		if o.finished {
			s.recycleOpLocked(o)
		}
		delete(s.ops, k)
	}
}

// SetNumClients adjusts the expected submission count, used when clients
// join or leave between rounds. It must not be called while a round's
// collectives are in flight.
func (s *Server) SetNumClients(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numClients = n
}

// AggregateModel implements sparse.Aggregator. values is only read for the
// duration of the call — the server stages its own copy — so callers may
// reuse the slice immediately after return. The returned slice is shared
// by every waiter of the collective and must not be mutated.
func (s *Server) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(context.Background(), clientID, round, "model", values)
}

// AggregateError implements sparse.Aggregator, with the same ownership
// contract as AggregateModel.
func (s *Server) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(context.Background(), clientID, round, "error", values)
}

// AggregateModelCtx implements sparse.ContextAggregator: the barrier wait
// aborts with ctx.Err() on cancellation. The submission itself stays
// registered (the server's staged copy, so the caller's slice is safe to
// reuse even after an abandoned wait), and the collective still completes
// for the other clients.
func (s *Server) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(ctx, clientID, round, "model", values)
}

// AggregateErrorCtx implements sparse.ContextAggregator.
func (s *Server) AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(ctx, clientID, round, "error", values)
}

// newOpLocked builds (or recycles) an op for the current roster. Caller
// holds s.mu.
func (s *Server) newOpLocked() *op {
	var o *op
	if n := len(s.opFree); n > 0 {
		o, s.opFree = s.opFree[n-1], s.opFree[:n-1]
	} else {
		o = &op{
			submitted: map[int]bool{},
			pending:   map[int]bool{},
			fold:      newFoldNode(),
		}
	}
	o.gen++
	o.done = make(chan struct{})
	if s.roster != nil {
		for id := range s.roster {
			o.pending[id] = true
		}
	} else {
		for id := 0; id < s.numClients; id++ {
			if !s.evicted[id] {
				o.pending[id] = true
			}
		}
	}
	o.need = len(o.pending)
	o.fold.arm(o.pending)
	return o
}

// recycleOpLocked resets a finished op shell onto the free list. Caller
// holds s.mu; no waiter can still be inside the op (BeginRound contract).
func (s *Server) recycleOpLocked(o *op) {
	clear(o.submitted)
	clear(o.pending)
	o.subs, o.need = 0, 0
	o.finished, o.extended = false, false
	o.result, o.failure = nil, nil
	o.done = nil
	// Completion already released the staged buffers; a straggler that
	// published after the barrier closed is swept by the node's reset.
	o.fold.reset()
	s.opFree = append(s.opFree, o)
}

func (s *Server) aggregate(ctx context.Context, clientID, round int, kind string, values []float64) ([]float64, error) {
	s.mu.Lock()
	if s.evicted[clientID] {
		s.mu.Unlock()
		return nil, &EvictedError{ClientID: clientID}
	}
	if s.async {
		s.mu.Unlock()
		return s.asyncSubmit(ctx, clientID, kind, values)
	}
	key := opKey{round: round, kind: kind}
	o, ok := s.ops[key]
	if !ok {
		o = s.newOpLocked()
		if s.deadline > 0 {
			// The closure captures the op pointer and its generation: a
			// firing that outlives this barrier (op recycled, shell reused —
			// possibly under the same key after a checkpoint replay) fails
			// the identity check in expire and is a no-op.
			gen := o.gen
			o.timer = time.AfterFunc(s.deadline, func() { s.expire(key, o, gen) })
		}
		s.ops[key] = o
	}
	if o.submitted[clientID] {
		if !s.idempotent {
			s.mu.Unlock()
			return nil, fmt.Errorf("fl: client %d double-submitted %s collective of round %d", clientID, kind, round)
		}
		// Retry after a dropped connection: the first submission is already
		// in the barrier; just wait for (or return) the result.
		s.mu.Unlock()
		return s.wait(ctx, o, -1)
	}
	o.submitted[clientID] = true
	delete(o.pending, clientID)
	contributing := values != nil && s.participants[clientID]
	closed := o.finished
	s.mu.Unlock()

	detach := -1
	if !closed {
		// O(model) work — staging and any opportunistic fold — happens
		// here, outside the server mutex.
		detach = s.stage(o, clientID, values, contributing)

		s.mu.Lock()
		o.subs++
		completer := !o.finished && o.subs >= o.need
		if completer {
			o.finished = true
			if o.timer != nil {
				o.timer.Stop()
			}
		}
		s.mu.Unlock()
		if completer {
			s.complete(o)
		}
	}
	return s.wait(ctx, o, detach)
}

// stage publishes a contribution to the fold node and opportunistically
// drains the fold frontier. Roster contributions are staged by reference —
// the submitting caller stays blocked until the barrier closes, so its
// slice is stable for the fold's lifetime; an abandoned wait detaches a
// copy first (see wait). The returned position is the caller's detach
// index, or -1 when nothing reference-staged. This fixes the historical
// aliasing bug where the server retained the slice past the call and a
// client reusing its round vector could corrupt an open barrier.
func (s *Server) stage(o *op, clientID int, values []float64, contributing bool) int {
	if !contributing {
		o.fold.stage(clientID, nil, false)
		return -1
	}
	p, inRoster := o.fold.stage(clientID, values, true)
	if inRoster {
		return p
	}
	// A contributor outside the op's roster snapshot (readmitted mid-round,
	// or a participant excluded from SetRoster). It still counts toward the
	// mean, but its id can interleave anywhere in the fold order, so its
	// presence forces completion to refold everything from the retained
	// contributions.
	o.fold.addStray(clientID, values, 1)
	return -1
}

// complete drains the remaining fold work, publishes the mean (or the
// failure), releases the staged buffers, and wakes every waiter. It runs
// outside s.mu on exactly one goroutine per op (guarded by o.finished).
func (s *Server) complete(o *op) {
	res, _, err := o.fold.complete(true)
	if err != nil {
		o.failure = err
	} else {
		o.result = res
	}
	close(o.done)
}

// wait blocks until the op completes or ctx is cancelled. detach is the
// caller's reference-staged position (-1 if none): on an abandoned wait
// the contribution is snapshotted into a pooled buffer first, because the
// caller may legally reuse its slice the moment this returns while the
// barrier is still open.
func (s *Server) wait(ctx context.Context, o *op, detach int) ([]float64, error) {
	select {
	case <-o.done:
	case <-ctx.Done():
		if detach >= 0 {
			o.fold.detach(detach)
		}
		return nil, ctx.Err()
	}
	if o.failure != nil {
		return nil, o.failure
	}
	return o.result, nil
}

// expire closes a deadline-expired barrier: every pending client is either
// granted one collective-wide extension (if the alive probe vouches for
// any of them and none was granted yet) or evicted, after which the mean
// is computed over the actual contributors. Evicting a client also removes
// it from every other in-flight collective so a dead client cannot stall
// the round's remaining barriers for another full deadline.
//
// armed and gen identify the barrier the timer was armed for. A stale
// firing — the op completed and was recycled (possibly reused for a new
// collective, even at the same key) between the timer going off and this
// lock acquisition — fails the identity check and does nothing.
func (s *Server) expire(key opKey, armed *op, gen uint64) {
	s.mu.Lock()
	o := s.ops[key]
	if o == nil || o != armed || o.gen != gen || o.finished || len(o.pending) == 0 {
		s.mu.Unlock()
		return
	}
	if !o.extended && s.aliveProbe != nil {
		for id := range o.pending {
			if s.aliveProbe(id) {
				o.extended = true
				o.timer.Reset(s.deadline)
				s.mu.Unlock()
				return
			}
		}
	}
	s.timeouts++
	missing := make([]int, 0, len(o.pending))
	for id := range o.pending {
		missing = append(missing, id)
	}
	var completable []*op
	for _, id := range missing {
		s.evictLocked(id, &completable)
	}
	s.mu.Unlock()
	// The heavy close-out (drain, scale, waking waiters) runs unlocked.
	for _, c := range completable {
		s.complete(c)
	}
}

// evictLocked removes a client from the roster and from every in-flight
// collective. Barriers that now have all remaining submissions are marked
// finished and appended to completable for the caller to close out after
// releasing s.mu. Caller holds s.mu.
func (s *Server) evictLocked(clientID int, completable *[]*op) {
	if s.evicted[clientID] {
		return
	}
	s.evicted[clientID] = true
	s.evictions++
	delete(s.roster, clientID)
	delete(s.participants, clientID)
	for _, o := range s.ops {
		if o.finished || !o.pending[clientID] {
			continue
		}
		delete(o.pending, clientID)
		o.need--
		o.fold.skip(clientID)
		if o.subs >= o.need {
			o.finished = true
			if o.timer != nil {
				o.timer.Stop()
			}
			*completable = append(*completable, o)
		}
	}
}

func sortInts(a []int) {
	// Insertion sort: contributor counts are small (≤ clients per round)
	// and usually nearly sorted.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
