// Package fl implements the federated-learning engine: the aggregation
// server (Algorithm 1's Central_Server), the client local-training loop,
// and the round driver that couples them with the netem timing model and a
// synchronization strategy (FedAvg, CMFL, APF, or FedSU).
package fl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrEvicted reports that a client was evicted from the session after
// missing a collective deadline; its late submissions are rejected rather
// than corrupting a later round. Match with errors.Is.
var ErrEvicted = errors.New("evicted from session")

// EvictedError carries the evicted client's id; it unwraps to ErrEvicted.
type EvictedError struct {
	ClientID int
}

// Error implements error. The "evicted from session" marker is part of the
// wire contract: net/rpc flattens errors to strings, and flrpc recovers
// the typed error by matching it.
func (e *EvictedError) Error() string {
	return fmt.Sprintf("fl: client %d evicted from session (missed collective deadline)", e.ClientID)
}

// Unwrap makes errors.Is(err, ErrEvicted) hold.
func (e *EvictedError) Unwrap() error { return ErrEvicted }

// Server is the in-process aggregation service. Each collective
// (model-average or error-average, per round) is a barrier: every client of
// the round must submit before any receives the element-wise mean over the
// contributing participants.
//
// Submission order across clients is arbitrary (clients run in goroutines),
// but results are deterministic: contributions are summed in client-id
// order once the barrier fills.
//
// # Fault tolerance
//
// With a deadline set (SetDeadline), a barrier that does not fill within
// the deadline of its first submission closes with the submissions it has:
// the missing clients are evicted from the roster, the mean is computed
// over the actual contributors, and later submissions from evicted clients
// fail with ErrEvicted. An alive probe (SetAliveProbe) grants one deadline
// extension when a missing client still heartbeats — distinguishing slow
// from dead — so the worst-case barrier span is two deadlines. With no
// deadline (the default) barriers block until they fill, exactly the
// pre-fault-tolerance behaviour.
type Server struct {
	mu           sync.Mutex
	numClients   int
	participants map[int]bool
	round        int
	ops          map[opKey]*op

	// roster is the set of client ids expected at every barrier; nil means
	// the implied roster {0..numClients-1}. Evicted ids are removed.
	roster  map[int]bool
	evicted map[int]bool

	deadline   time.Duration
	aliveProbe func(clientID int) bool
	idempotent bool

	// Cumulative fault counters (see EvictionCount / TimeoutCount).
	evictions int
	timeouts  int
}

type opKey struct {
	round int
	kind  string
}

type op struct {
	need     int
	subs     int
	byID     map[int][]float64
	ids      []int
	pending  map[int]bool
	result   []float64
	done     chan struct{}
	finished bool
	failure  error
	timer    *time.Timer
	extended bool
}

// NewServer constructs a server expecting numClients submissions per
// collective.
func NewServer(numClients int) *Server {
	return &Server{
		numClients:   numClients,
		participants: map[int]bool{},
		evicted:      map[int]bool{},
		ops:          map[opKey]*op{},
	}
}

// SetDeadline bounds every collective barrier: d after the first submission
// arrives, the barrier closes with whoever has submitted and evicts the
// rest. Zero (the default) disables the bound and restores blocking
// barriers. It must not be called while collectives are in flight.
func (s *Server) SetDeadline(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadline = d
}

// SetAliveProbe installs a liveness oracle consulted when a deadline
// expires: a missing-but-alive client (a slow straggler, per its
// heartbeats) buys the barrier one extension of the same deadline before
// eviction proceeds. A nil probe (the default) treats every missing client
// as dead.
func (s *Server) SetAliveProbe(probe func(clientID int) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aliveProbe = probe
}

// SetIdempotent makes duplicate submissions benign: a client resubmitting
// to a collective it already joined (a retry after a dropped connection)
// waits for and receives the collective result instead of an error. The
// first submission's values win. The default (false) keeps strict
// double-submit errors, which catch strategy bugs in-process.
func (s *Server) SetIdempotent(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idempotent = v
}

// SetRoster declares the client ids expected at every barrier, replacing
// the implied {0..numClients-1}. Already-evicted ids are ignored until
// readmitted. It must not be called while collectives are in flight.
func (s *Server) SetRoster(ids []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roster = make(map[int]bool, len(ids))
	for _, id := range ids {
		if !s.evicted[id] {
			s.roster[id] = true
		}
	}
}

// Readmit clears a client's evicted status (a rejoin after reconnecting);
// it re-enters the roster at the next SetRoster/op creation.
func (s *Server) Readmit(clientID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted[clientID] {
		delete(s.evicted, clientID)
		if s.roster != nil {
			s.roster[clientID] = true
		}
	}
}

// Evicted returns the currently evicted client ids in ascending order.
func (s *Server) Evicted() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.evicted))
	for id := range s.evicted {
		out = append(out, id)
	}
	sortInts(out)
	return out
}

// EvictionCount returns the cumulative number of deadline evictions.
func (s *Server) EvictionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// TimeoutCount returns the cumulative number of collectives closed by
// deadline expiry.
func (s *Server) TimeoutCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timeouts
}

// BeginRound declares the active round and the participation quorum: only
// listed clients' submissions contribute to averages this round (everyone
// still synchronizes and receives results). It also garbage-collects
// collectives from earlier rounds.
func (s *Server) BeginRound(round int, participants []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round = round
	s.participants = make(map[int]bool, len(participants))
	for _, id := range participants {
		s.participants[id] = true
	}
	// Drop all completed collectives. BeginRound is only called when no
	// collective is in flight (every barrier of the previous round has
	// released its waiters, and waiters hold direct op pointers), and a
	// checkpoint restore may legitimately replay an earlier round index,
	// so the whole map is cleared rather than just older rounds.
	for k, o := range s.ops {
		if o.timer != nil {
			o.timer.Stop()
		}
		delete(s.ops, k)
	}
}

// SetNumClients adjusts the expected submission count, used when clients
// join or leave between rounds. It must not be called while a round's
// collectives are in flight.
func (s *Server) SetNumClients(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numClients = n
}

// AggregateModel implements sparse.Aggregator.
func (s *Server) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(context.Background(), clientID, round, "model", values)
}

// AggregateError implements sparse.Aggregator.
func (s *Server) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(context.Background(), clientID, round, "error", values)
}

// AggregateModelCtx implements sparse.ContextAggregator: the barrier wait
// aborts with ctx.Err() on cancellation. The submission itself stays
// registered, so the collective still completes for the other clients.
func (s *Server) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(ctx, clientID, round, "model", values)
}

// AggregateErrorCtx implements sparse.ContextAggregator.
func (s *Server) AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(ctx, clientID, round, "error", values)
}

// rosterPending returns the not-yet-submitted set for a fresh op: the
// explicit roster when set, else the implied {0..numClients-1}, minus
// evicted ids. Caller holds s.mu.
func (s *Server) rosterPending() map[int]bool {
	pending := make(map[int]bool, s.numClients)
	if s.roster != nil {
		for id := range s.roster {
			pending[id] = true
		}
		return pending
	}
	for id := 0; id < s.numClients; id++ {
		if !s.evicted[id] {
			pending[id] = true
		}
	}
	return pending
}

func (s *Server) aggregate(ctx context.Context, clientID, round int, kind string, values []float64) ([]float64, error) {
	s.mu.Lock()
	if s.evicted[clientID] {
		s.mu.Unlock()
		return nil, &EvictedError{ClientID: clientID}
	}
	key := opKey{round: round, kind: kind}
	o, ok := s.ops[key]
	if !ok {
		pending := s.rosterPending()
		o = &op{
			need:    len(pending),
			byID:    map[int][]float64{},
			pending: pending,
			done:    make(chan struct{}),
		}
		if s.deadline > 0 {
			o.timer = time.AfterFunc(s.deadline, func() { s.expire(key) })
		}
		s.ops[key] = o
	}
	if _, dup := o.byID[clientID]; dup {
		if !s.idempotent {
			s.mu.Unlock()
			return nil, fmt.Errorf("fl: client %d double-submitted %s collective of round %d", clientID, kind, round)
		}
		// Retry after a dropped connection: the first submission is already
		// in the barrier; just wait for (or return) the result.
		s.mu.Unlock()
		return s.wait(ctx, o)
	}
	if values != nil && s.participants[clientID] {
		o.byID[clientID] = values
		o.ids = append(o.ids, clientID)
	} else {
		o.byID[clientID] = nil
	}
	delete(o.pending, clientID)
	o.subs++
	if o.subs >= o.need {
		o.finish()
	}
	s.mu.Unlock()

	return s.wait(ctx, o)
}

// wait blocks until the op completes or ctx is cancelled.
func (s *Server) wait(ctx context.Context, o *op) ([]float64, error) {
	select {
	case <-o.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if o.failure != nil {
		return nil, o.failure
	}
	return o.result, nil
}

// expire closes a deadline-expired barrier: every pending client is either
// granted one collective-wide extension (if the alive probe vouches for
// any of them and none was granted yet) or evicted, after which the mean
// is computed over the actual contributors. Evicting a client also removes
// it from every other in-flight collective so a dead client cannot stall
// the round's remaining barriers for another full deadline.
func (s *Server) expire(key opKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.ops[key]
	if o == nil || o.finished || len(o.pending) == 0 {
		return
	}
	if !o.extended && s.aliveProbe != nil {
		for id := range o.pending {
			if s.aliveProbe(id) {
				o.extended = true
				o.timer.Reset(s.deadline)
				return
			}
		}
	}
	s.timeouts++
	for id := range o.pending {
		s.evictLocked(id)
	}
}

// evictLocked removes a client from the roster and from every in-flight
// collective, finishing barriers that now have all remaining submissions.
// Caller holds s.mu.
func (s *Server) evictLocked(clientID int) {
	if s.evicted[clientID] {
		return
	}
	s.evicted[clientID] = true
	s.evictions++
	delete(s.roster, clientID)
	delete(s.participants, clientID)
	for _, o := range s.ops {
		if o.finished || !o.pending[clientID] {
			continue
		}
		delete(o.pending, clientID)
		o.need--
		if o.subs >= o.need {
			if o.timer != nil {
				o.timer.Stop()
			}
			o.finish()
		}
	}
}

// finish computes the mean over contributors in client-id order and
// releases all waiters. Caller holds s.mu.
func (o *op) finish() {
	if o.finished {
		return
	}
	o.finished = true
	if o.timer != nil {
		o.timer.Stop()
	}
	defer close(o.done)
	if len(o.ids) == 0 {
		o.result = nil
		return
	}
	// Deterministic order: ascending client id.
	sortInts(o.ids)
	first := o.byID[o.ids[0]]
	sum := make([]float64, len(first))
	for _, id := range o.ids {
		v := o.byID[id]
		if len(v) != len(sum) {
			o.failure = fmt.Errorf("fl: client %d submitted %d values, others %d", id, len(v), len(sum))
			return
		}
		for i := range sum {
			sum[i] += v[i]
		}
	}
	inv := 1.0 / float64(len(o.ids))
	for i := range sum {
		sum[i] *= inv
	}
	o.result = sum
}

func sortInts(a []int) {
	// Insertion sort: contributor counts are small (≤ clients per round)
	// and usually nearly sorted.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
