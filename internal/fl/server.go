// Package fl implements the federated-learning engine: the aggregation
// server (Algorithm 1's Central_Server), the client local-training loop,
// and the round driver that couples them with the netem timing model and a
// synchronization strategy (FedAvg, CMFL, APF, or FedSU).
package fl

import (
	"fmt"
	"sync"
)

// Server is the in-process aggregation service. Each collective
// (model-average or error-average, per round) is a barrier: every client of
// the round must submit before any receives the element-wise mean over the
// contributing participants.
//
// Submission order across clients is arbitrary (clients run in goroutines),
// but results are deterministic: contributions are summed in client-id
// order once the barrier fills.
type Server struct {
	mu           sync.Mutex
	numClients   int
	participants map[int]bool
	round        int
	ops          map[opKey]*op
}

type opKey struct {
	round int
	kind  string
}

type op struct {
	need    int
	subs    int
	byID    map[int][]float64
	ids     []int
	result  []float64
	done    chan struct{}
	failure error
}

// NewServer constructs a server expecting numClients submissions per
// collective.
func NewServer(numClients int) *Server {
	return &Server{
		numClients:   numClients,
		participants: map[int]bool{},
		ops:          map[opKey]*op{},
	}
}

// BeginRound declares the active round and the participation quorum: only
// listed clients' submissions contribute to averages this round (everyone
// still synchronizes and receives results). It also garbage-collects
// collectives from earlier rounds.
func (s *Server) BeginRound(round int, participants []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round = round
	s.participants = make(map[int]bool, len(participants))
	for _, id := range participants {
		s.participants[id] = true
	}
	// Drop all completed collectives. BeginRound is only called when no
	// collective is in flight (every barrier of the previous round has
	// released its waiters, and waiters hold direct op pointers), and a
	// checkpoint restore may legitimately replay an earlier round index,
	// so the whole map is cleared rather than just older rounds.
	for k := range s.ops {
		delete(s.ops, k)
	}
}

// SetNumClients adjusts the expected submission count, used when clients
// join or leave between rounds. It must not be called while a round's
// collectives are in flight.
func (s *Server) SetNumClients(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numClients = n
}

// AggregateModel implements sparse.Aggregator.
func (s *Server) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(clientID, round, "model", values)
}

// AggregateError implements sparse.Aggregator.
func (s *Server) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return s.aggregate(clientID, round, "error", values)
}

func (s *Server) aggregate(clientID, round int, kind string, values []float64) ([]float64, error) {
	s.mu.Lock()
	key := opKey{round: round, kind: kind}
	o, ok := s.ops[key]
	if !ok {
		o = &op{
			need: s.numClients,
			byID: map[int][]float64{},
			done: make(chan struct{}),
		}
		s.ops[key] = o
	}
	if _, dup := o.byID[clientID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("fl: client %d double-submitted %s collective of round %d", clientID, kind, round)
	}
	if values != nil && s.participants[clientID] {
		o.byID[clientID] = values
		o.ids = append(o.ids, clientID)
	} else {
		o.byID[clientID] = nil
	}
	o.subs++
	if o.subs == o.need {
		o.finish()
	}
	s.mu.Unlock()

	<-o.done
	if o.failure != nil {
		return nil, o.failure
	}
	return o.result, nil
}

// finish computes the mean over contributors in client-id order and
// releases all waiters. Caller holds s.mu.
func (o *op) finish() {
	defer close(o.done)
	if len(o.ids) == 0 {
		o.result = nil
		return
	}
	// Deterministic order: ascending client id.
	sortInts(o.ids)
	first := o.byID[o.ids[0]]
	sum := make([]float64, len(first))
	for _, id := range o.ids {
		v := o.byID[id]
		if len(v) != len(sum) {
			o.failure = fmt.Errorf("fl: client %d submitted %d values, others %d", id, len(v), len(sum))
			return
		}
		for i := range sum {
			sum[i] += v[i]
		}
	}
	inv := 1.0 / float64(len(o.ids))
	for i := range sum {
		sum[i] *= inv
	}
	o.result = sum
}

func sortInts(a []int) {
	// Insertion sort: contributor counts are small (≤ clients per round)
	// and usually nearly sorted.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
