package fl

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/nn"
	"fedsu/internal/sparse"
)

// countingSyncer embeds the Syncer interface (deliberately NOT
// ContextSyncer, so SyncContext falls back to the plain path) and cancels
// the shared context once every client of the round has synchronized —
// modeling a cancellation that lands after the collective completed but
// before evaluation.
type countingSyncer struct {
	sparse.Syncer
	done   *atomic.Int64
	quorum int64
	cancel context.CancelFunc
}

func (c *countingSyncer) Sync(round int, local []float64, contributor bool) ([]float64, sparse.Traffic, error) {
	out, tr, err := c.Syncer.Sync(round, local, contributor)
	if c.done.Add(1) == c.quorum {
		c.cancel()
	}
	return out, tr, err
}

// Cancelling mid-round after all clients synced must still advance the
// round counter and per-round state, so a checkpoint taken afterwards
// resumes at the NEXT round instead of replaying one the fleet already
// applied.
func TestRunRoundCancelAfterSyncKeepsStateConsistent(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 512, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	cfg := Config{
		NumClients:     4,
		LocalIters:     2,
		BatchSize:      8,
		LR:             0.05,
		WeightDecay:    0.0005,
		DirichletAlpha: 1.0,
		EvalSamples:    128,
		EvalBatch:      64,
		Seed:           3,
	}
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var synced atomic.Int64
	factory := func(id, size int, agg sparse.Aggregator) sparse.Syncer {
		return &countingSyncer{
			Syncer: sparse.NewFedAvg(id, size, agg),
			done:   &synced,
			quorum: int64(cfg.NumClients),
			cancel: cancel,
		}
	}
	e, err := NewEngine(cfg, builder, ds, factory)
	if err != nil {
		t.Fatal(err)
	}

	stats, err := e.RunRound(ctx, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRound error = %v, want context.Canceled", err)
	}
	if stats.Round != 0 {
		t.Errorf("stats.Round = %d, want 0", stats.Round)
	}
	if stats.Accuracy != -1 || stats.Loss != -1 {
		t.Errorf("cancelled round must skip evaluation, got acc=%v loss=%v", stats.Accuracy, stats.Loss)
	}
	if stats.Duration <= 0 || stats.SimTime <= 0 {
		t.Errorf("cancelled-but-complete round must account time, got %v/%v", stats.Duration, stats.SimTime)
	}
	if c := e.Checkpoint(); c.Round != 1 {
		t.Errorf("checkpoint Round = %d after a completed round, want 1", c.Round)
	}

	// A fresh context resumes at round 1, not a replay of round 0.
	stats2, err := e.RunRound(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Round != 1 {
		t.Errorf("resumed round = %d, want 1", stats2.Round)
	}
}

// A context cancelled before RunRound starts must not burn a round of
// local training: no state changes, bare ctx error out.
func TestRunRoundCancelledBeforeStart(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunRound(ctx, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRound error = %v, want context.Canceled", err)
	}
	if c := e.Checkpoint(); c.Round != 1 {
		t.Errorf("checkpoint Round = %d, want 1 (unchanged by the aborted round)", c.Round)
	}
}
