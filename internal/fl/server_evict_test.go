package fl

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Regression tests for eviction-state carry-over across sessions: the
// interaction of Server.evicted with SetNumClients, SetRoster, and
// Readmit. The historical Readmit injected the readmitted id straight into
// the ACTIVE roster, so a client evicted in one session and re-registered
// under a smaller roster in the next became a barrier member the caller's
// roster never listed — every barrier then waited forever on a submission
// that was never coming ("ghost-block").

// runBarrier submits for every id in ids concurrently and returns the
// per-id errors once the barrier releases.
func runBarrier(t *testing.T, s *Server, round int, ids []int) map[int]error {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(map[int]error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := s.AggregateModel(id, round, contributionFor(id, 8))
			mu.Lock()
			errs[id] = err
			mu.Unlock()
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("barrier for round %d over %v never released (ghost-block)", round, ids)
	}
	return errs
}

// TestReadmitUnderSmallerRosterDoesNotGhostBlock is the carried-over-state
// regression: session 1 evicts client 2; session 2 readmits it but runs
// with the SMALLER roster {0, 1}. The {0, 1} barriers must complete without
// any submission from client 2.
func TestReadmitUnderSmallerRosterDoesNotGhostBlock(t *testing.T) {
	s := NewServer(3)
	s.SetDeadline(30 * time.Millisecond)
	s.SetRoster([]int{0, 1, 2})
	s.BeginRound(0, []int{0, 1, 2})
	for id, err := range runBarrier(t, s, 0, []int{0, 1}) { // client 2 never submits
		if err != nil {
			t.Fatalf("session 1 client %d: %v", id, err)
		}
	}
	if got := s.Evicted(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Evicted() = %v, want [2]", got)
	}

	// Session 2: readmit 2, then declare the smaller roster. The order is
	// the dangerous one — a Readmit that edited the roster directly would
	// be overwritten here only if SetRoster came after, so also test the
	// reverse order below.
	s.SetDeadline(0)
	s.Readmit(2)
	s.SetRoster([]int{0, 1})
	s.BeginRound(1, []int{0, 1})
	for id, err := range runBarrier(t, s, 1, []int{0, 1}) {
		if err != nil {
			t.Fatalf("session 2 client %d: %v", id, err)
		}
	}

	// Reverse order: roster declared first, THEN the readmission arrives
	// (a late rejoin RPC). The active {0,1} roster must stay authoritative.
	s.SetRoster([]int{0, 1})
	s.Readmit(2)
	s.BeginRound(2, []int{0, 1})
	for id, err := range runBarrier(t, s, 2, []int{0, 1}) {
		if err != nil {
			t.Fatalf("session 3 client %d: %v", id, err)
		}
	}
}

// TestReadmittedClientRejoinsViaRoster: after Readmit, a SetRoster that
// lists the client restores full membership — its submissions count and
// the barrier waits for it.
func TestReadmittedClientRejoinsViaRoster(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(30 * time.Millisecond)
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})
	for id, err := range runBarrier(t, s, 0, []int{0}) { // evicts 1
		if err != nil {
			t.Fatalf("round 0 client %d: %v", id, err)
		}
	}
	s.SetDeadline(0)
	s.Readmit(1)
	s.SetRoster([]int{0, 1})
	s.BeginRound(1, []int{0, 1})
	errs := runBarrier(t, s, 1, []int{0, 1})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("round 1 client %d: %v", id, err)
		}
	}
}

// TestEvictedExcludedFromImpliedRoster: with no explicit roster, the
// implied {0..n-1} must also skip evicted ids — and keep skipping them
// across BeginRound until Readmit.
func TestEvictedExcludedFromImpliedRoster(t *testing.T) {
	s := NewServer(3)
	s.SetDeadline(30 * time.Millisecond)
	s.BeginRound(0, []int{0, 1, 2})
	for id, err := range runBarrier(t, s, 0, []int{0, 1}) { // evicts 2
		if err != nil {
			t.Fatalf("round 0 client %d: %v", id, err)
		}
	}
	s.SetDeadline(0)
	// No roster call at all: rounds 1 and 2 run on the implied roster,
	// which must now be {0, 1}.
	for round := 1; round <= 2; round++ {
		s.BeginRound(round, []int{0, 1})
		for id, err := range runBarrier(t, s, round, []int{0, 1}) {
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, id, err)
			}
		}
	}
	// Readmit restores the id to the implied roster immediately (nothing
	// else re-declares membership on the implied path).
	s.Readmit(2)
	s.BeginRound(3, []int{0, 1, 2})
	for id, err := range runBarrier(t, s, 3, []int{0, 1, 2}) {
		if err != nil {
			t.Fatalf("round 3 client %d: %v", id, err)
		}
	}
}

// TestSetRosterFiltersEvicted: declaring a roster that still lists an
// evicted id must not resurrect it — its submissions stay rejected and
// barriers do not wait for it.
func TestSetRosterFiltersEvicted(t *testing.T) {
	s := NewServer(3)
	s.SetDeadline(30 * time.Millisecond)
	s.SetRoster([]int{0, 1, 2})
	s.BeginRound(0, []int{0, 1, 2})
	for id, err := range runBarrier(t, s, 0, []int{0, 1}) { // evicts 2
		if err != nil {
			t.Fatalf("round 0 client %d: %v", id, err)
		}
	}
	s.SetDeadline(0)
	// A stale session config re-declares the full roster without readmitting.
	s.SetRoster([]int{0, 1, 2})
	s.BeginRound(1, []int{0, 1, 2})
	for id, err := range runBarrier(t, s, 1, []int{0, 1}) {
		if err != nil {
			t.Fatalf("round 1 client %d: %v", id, err)
		}
	}
	if _, err := s.AggregateModel(2, 1, contributionFor(2, 8)); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted id resurrected by SetRoster: err = %v, want ErrEvicted", err)
	}
}

// TestSetNumClientsShrinkAfterEviction: shrinking the session below an
// evicted id's number must not wedge the implied roster — the evicted id
// falls outside {0..n-1} and the smaller cohort proceeds; growing again
// keeps the id evicted until Readmit.
func TestSetNumClientsShrinkAfterEviction(t *testing.T) {
	s := NewServer(4)
	s.SetDeadline(30 * time.Millisecond)
	s.BeginRound(0, []int{0, 1, 2, 3})
	for id, err := range runBarrier(t, s, 0, []int{0, 1, 2}) { // evicts 3
		if err != nil {
			t.Fatalf("round 0 client %d: %v", id, err)
		}
	}
	s.SetDeadline(0)
	s.SetNumClients(2)
	s.BeginRound(1, []int{0, 1})
	for id, err := range runBarrier(t, s, 1, []int{0, 1}) {
		if err != nil {
			t.Fatalf("round 1 client %d: %v", id, err)
		}
	}
	// Grow back past the evicted id: still evicted, implied roster is
	// {0, 1, 2} — the barrier must not wait for 3 and must reject it.
	s.SetNumClients(4)
	s.BeginRound(2, []int{0, 1, 2})
	for id, err := range runBarrier(t, s, 2, []int{0, 1, 2}) {
		if err != nil {
			t.Fatalf("round 2 client %d: %v", id, err)
		}
	}
	if _, err := s.AggregateModel(3, 2, contributionFor(3, 8)); !errors.Is(err, ErrEvicted) {
		t.Fatalf("regrown session resurrected evicted id: err = %v, want ErrEvicted", err)
	}
}
