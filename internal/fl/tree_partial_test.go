package fl

import (
	"sync"
	"testing"
	"time"
)

// TestTreePartialBitIdentity: a tree where some leaf blocks are folded by
// remote subtrees (SetUpstream -> AggregatePartial) and the rest by
// direct member submissions must publish the same global, to the bit, as
// a flat fold over the whole cohort — the distributed-tier deployment
// cannot perturb the canonical pairwise order.
func TestTreePartialBitIdentity(t *testing.T) {
	const size, fanout = 3100, 8
	pop := NewPopulation(23)
	pop.RegisterN(2000, 10)
	cohort := pop.SampleCohort(7, 40) // 5 aligned blocks of 8

	vecs := make(map[int][]float64, len(cohort))
	ranked := make([][]float64, len(cohort))
	for r, id := range cohort {
		if r == 19 { // one abstainer inside a remote block
			continue
		}
		vecs[id] = contributionFor(id, size)
		ranked[r] = vecs[id]
	}
	want := canonicalMean(ranked)

	root := NewTree(fanout)
	root.SetRoster(cohort)
	root.BeginRound(0, cohort)

	// Blocks 0, 2, 4 are served by remote relays; blocks 1, 3 submit
	// their members directly to the root.
	var wg sync.WaitGroup
	check := func(id int, res []float64, err error) {
		if err != nil {
			t.Errorf("client %d: %v", id, err)
			return
		}
		if !sameBits(res, want) {
			t.Errorf("client %d: distributed-tier global deviates from canonical mean", id)
		}
	}
	for b := 0; b < 5; b++ {
		lo := b * fanout
		block := cohort[lo:min(lo+fanout, len(cohort))]
		if b%2 == 1 {
			for _, id := range block {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					res, err := root.AggregateModel(id, 0, vecs[id])
					check(id, res, err)
				}(id)
			}
			continue
		}
		sub := NewTree(fanout)
		sub.SetRoster(block)
		sub.BeginRound(0, block)
		sub.SetUpstream(lo, func(round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
			return root.AggregatePartial(round, kind, rankLo, sum, weight)
		})
		for _, id := range block {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				res, err := sub.AggregateModel(id, 0, vecs[id])
				check(id, res, err)
			}(id)
		}
	}
	wg.Wait()
	st := root.Stats()
	// 3 remote partials + 2 locally folded leaves + nothing from the root.
	if st.ForwardedPartials != 5 {
		t.Fatalf("forwarded partials = %d, want 5", st.ForwardedPartials)
	}
	if st.LeafFolds != 2 {
		t.Fatalf("leaf folds = %d, want 2 (remote blocks fold at their relay)", st.LeafFolds)
	}
}

// TestTreePartialIdempotent: resubmitting a block's partial (the flrpc
// retry-after-reconnect path) returns the published global instead of a
// double-submit error.
func TestTreePartialIdempotent(t *testing.T) {
	roster := []int{0, 1, 2, 3}
	vecs := map[int][]float64{2: {4, 8}, 3: {8, 16}}
	tr := NewTree(2)
	tr.SetRoster(roster)
	tr.BeginRound(0, roster)
	sum := []float64{2, 6} // members 0+1 folded remotely: {0,2} + {2,4}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := tr.AggregatePartial(0, "model", 0, sum, 2); err != nil {
			t.Errorf("first partial: %v", err)
		}
	}()
	for _, id := range []int{2, 3} {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := tr.AggregateModel(id, 0, vecs[id]); err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	res, err := tr.AggregatePartial(0, "model", 0, sum, 2)
	if err != nil {
		t.Fatalf("idempotent resubmission rejected: %v", err)
	}
	want := []float64{(2 + 4 + 8) / 4.0, (6 + 8 + 16) / 4.0}
	if !sameBits(res, want) {
		t.Fatalf("resubmission returned %v, want %v", res, want)
	}
}

// TestTreePartialValidation: the receiving side rejects partials that
// cannot be injected without corrupting the fold.
func TestTreePartialValidation(t *testing.T) {
	roster := []int{10, 11, 12, 13, 14, 15}
	tr := NewTree(2)
	tr.SetRoster(roster)
	tr.BeginRound(0, roster)
	if _, err := tr.AggregatePartial(0, "model", 1, []float64{1}, 1); err == nil {
		t.Fatal("misaligned rank accepted")
	}
	if _, err := tr.AggregatePartial(0, "model", 8, []float64{1}, 1); err == nil {
		t.Fatal("out-of-roster rank accepted")
	}
	if _, err := tr.AggregatePartial(0, "model", 0, []float64{1}, 3); err == nil {
		t.Fatal("weight above block size accepted")
	}
	if _, err := tr.AggregatePartial(0, "model", 0, nil, 1); err == nil {
		t.Fatal("positive weight with nil sum accepted")
	}

	// A block with direct member submissions refuses a replacement partial.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = tr.AggregateModel(10, 0, []float64{1})
	}()
	waitTreeSubs(t, tr, 0, "model", 1)
	if _, err := tr.AggregatePartial(0, "model", 0, []float64{5}, 2); err == nil {
		t.Fatal("partial over a partially folded block accepted")
	}
	for _, id := range []int{11, 12, 13, 14, 15} {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, _ = tr.AggregateModel(id, 0, []float64{1})
		}(id)
	}
	wg.Wait()

	// A single-tier roster has no parent to stage into.
	small := NewTree(4)
	small.SetRoster([]int{1, 2, 3})
	small.BeginRound(0, []int{1, 2, 3})
	if _, err := small.AggregatePartial(0, "model", 0, []float64{1}, 1); err == nil {
		t.Fatal("single-tier partial accepted")
	}

	// After deadline expiry resolved a block, its late partial errors.
	late := NewTree(2)
	late.SetDeadline(20 * time.Millisecond)
	late.SetRoster([]int{0, 1, 2, 3})
	late.BeginRound(1, []int{0, 1, 2, 3})
	var lw sync.WaitGroup
	for _, id := range []int{2, 3} {
		lw.Add(1)
		go func(id int) {
			defer lw.Done()
			_, _ = late.AggregateModel(id, 1, []float64{1, 2})
		}(id)
	}
	lw.Wait()
	if _, err := late.AggregatePartial(1, "model", 0, []float64{9, 9}, 2); err == nil {
		t.Fatal("partial for an expired block accepted")
	}
}
