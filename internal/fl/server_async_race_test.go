package fl

import (
	"sync"
	"testing"
)

// TestAsyncSubmitApplyRace hammers the buffered-async path from many
// submitters at once while readers poll the published global. It exists
// for the -race lane: the detector checks that every fold/apply/publish
// interleaving is synchronized, and the checksum pass checks the
// apply-allocates-fresh contract — a global handed to a caller must never
// be mutated by later applies.
func TestAsyncSubmitApplyRace(t *testing.T) {
	const (
		clients = 8
		rounds  = 50
		size    = 256
	)
	s := newAsyncServer(t, clients, AsyncConfig{K: 4, MaxStaleness: -1, StalenessWeight: 1})

	type snapshot struct {
		global []float64
		sum    float64
	}
	checksum := func(g []float64) float64 {
		total := 0.0
		for _, v := range g {
			total += v
		}
		return total
	}

	var wg sync.WaitGroup
	captured := make([][]snapshot, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vec := contributionFor(id, size)
			for r := 0; r < rounds; r++ {
				g, err := s.AggregateModel(id, r, vec)
				if err != nil {
					t.Error(err)
					return
				}
				if g != nil {
					captured[id] = append(captured[id], snapshot{global: g, sum: checksum(g)})
				}
			}
		}(id)
	}

	// Readers race the submitters on every getter the engine uses.
	quit := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-quit:
					return
				default:
				}
				if g := s.AsyncGlobal(); g != nil {
					_ = checksum(g)
				}
				_ = s.AsyncVersion()
				_ = s.StaleDropCount()
			}
		}()
	}

	wg.Wait()
	close(quit)
	readers.Wait()

	if s.AsyncVersion() == 0 {
		t.Fatal("no apply ever ran; the hammer exercised nothing")
	}
	for id, snaps := range captured {
		for i, snap := range snaps {
			if got := checksum(snap.global); got != snap.sum {
				t.Fatalf("client %d capture %d mutated after handout: checksum %g, was %g",
					id, i, got, snap.sum)
			}
		}
	}
}
