package fl

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestRunRoundCancelledContextSkipsTraining checks that a context cancelled
// before RunRound is entered aborts immediately — no local SGD runs, so the
// global model and the emulated clock are untouched.
func TestRunRoundCancelledContextSkipsTraining(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 0)
	before := e.GlobalVector()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := e.RunRound(ctx, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := e.GlobalVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("model changed at %d despite cancelled context", i)
		}
	}
	if e.SimTime() != 0 {
		t.Fatalf("sim time advanced to %v despite cancelled context", e.SimTime())
	}
}

// TestZeroClientEngineFailsDescriptively drains the roster (white-box: the
// dynamic-membership API refuses to remove the last client, but departures
// plus failures could still leave the slice empty) and checks every
// aggregate entry point degrades with a descriptive error instead of an
// index-out-of-range or division-by-zero panic.
func TestZeroClientEngineFailsDescriptively(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 0)
	e.clients = nil

	_, err := e.RunRound(context.Background(), true)
	if err == nil {
		t.Fatal("RunRound on a zero-client engine must fail")
	}
	if !strings.Contains(err.Error(), "no clients") {
		t.Fatalf("error %q should mention the empty roster", err)
	}

	if acc, loss := e.EvaluateGlobal(); !math.IsNaN(acc) || !math.IsNaN(loss) {
		t.Fatalf("EvaluateGlobal = (%v, %v), want NaN metrics", acc, loss)
	}
	if v := e.GlobalVector(); v != nil {
		t.Fatalf("GlobalVector = %d values, want nil", len(v))
	}
}
