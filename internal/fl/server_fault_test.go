package fl

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Two of three clients submit; the third never does. The deadline must
// close the barrier over the two contributors and evict the third.
func TestDeadlineEvictsMissingClient(t *testing.T) {
	s := NewServer(3)
	s.SetDeadline(50 * time.Millisecond)
	s.SetRoster([]int{0, 1, 2})
	s.BeginRound(0, []int{0, 1, 2})

	var wg sync.WaitGroup
	results := make([][]float64, 2)
	errs := make([]error, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.AggregateModel(i, 0, []float64{float64(2 * (i + 1))})
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("barrier took %v, deadline not enforced", el)
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if len(results[i]) != 1 || results[i][0] != 3 {
			t.Errorf("client %d got %v, want [3] (mean over survivors)", i, results[i])
		}
	}
	if got := s.Evicted(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Evicted() = %v, want [2]", got)
	}
	if s.EvictionCount() != 1 || s.TimeoutCount() != 1 {
		t.Errorf("counters = %d evictions / %d timeouts, want 1/1", s.EvictionCount(), s.TimeoutCount())
	}

	// The straggler's late submission must be rejected with the typed
	// error, not absorbed into a later collective.
	if _, err := s.AggregateModel(2, 0, []float64{99}); !errors.Is(err, ErrEvicted) {
		t.Errorf("late submission error = %v, want ErrEvicted", err)
	}
	var ev *EvictedError
	if _, err := s.AggregateModel(2, 1, []float64{99}); !errors.As(err, &ev) || ev.ClientID != 2 {
		t.Errorf("next-round submission error = %v, want EvictedError{2}", err)
	}
}

// Evicting on one collective must also release the round's other in-flight
// collective rather than letting it burn a second full deadline.
func TestEvictionReleasesAllInFlightCollectives(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(40 * time.Millisecond)
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})

	var wg sync.WaitGroup
	var modelRes, errRes []float64
	wg.Add(2)
	go func() { defer wg.Done(); modelRes, _ = s.AggregateModel(0, 0, []float64{1}) }()
	go func() { defer wg.Done(); errRes, _ = s.AggregateError(0, 0, []float64{5}) }()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("collectives still blocked long after the deadline")
	}
	if len(modelRes) != 1 || modelRes[0] != 1 {
		t.Errorf("model collective = %v, want [1]", modelRes)
	}
	if len(errRes) != 1 || errRes[0] != 5 {
		t.Errorf("error collective = %v, want [5]", errRes)
	}
	if s.EvictionCount() != 1 {
		t.Errorf("evictions = %d, want 1 (client 1 evicted once, across both ops)", s.EvictionCount())
	}
}

// An alive probe vouching for the straggler buys the barrier exactly one
// deadline extension; a straggler arriving inside it completes the round
// with no eviction.
func TestAliveProbeExtendsDeadlineOnce(t *testing.T) {
	s := NewServer(2)
	const d = 60 * time.Millisecond
	s.SetDeadline(d)
	s.SetAliveProbe(func(int) bool { return true })
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})

	var wg sync.WaitGroup
	var fast []float64
	wg.Add(1)
	go func() { defer wg.Done(); fast, _ = s.AggregateModel(0, 0, []float64{2}) }()

	// Miss the first deadline but land within the extension.
	time.Sleep(d + d/2)
	slow, err := s.AggregateModel(1, 0, []float64{4})
	if err != nil {
		t.Fatalf("straggler inside the extension: %v", err)
	}
	wg.Wait()
	for _, r := range [][]float64{fast, slow} {
		if len(r) != 1 || r[0] != 3 {
			t.Errorf("result = %v, want [3] (both contributed)", r)
		}
	}
	if s.EvictionCount() != 0 {
		t.Errorf("evictions = %d, want 0", s.EvictionCount())
	}
}

// Even a permanently "alive" straggler is evicted after the single
// extension — the barrier is deadline-bounded, not deadline-hinted.
func TestAliveProbeExtensionIsBounded(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(40 * time.Millisecond)
	s.SetAliveProbe(func(int) bool { return true })
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})

	start := time.Now()
	res, err := s.AggregateModel(0, 0, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("barrier took %v despite the bounded extension", el)
	}
	if len(res) != 1 || res[0] != 7 {
		t.Errorf("result = %v, want [7]", res)
	}
	if s.EvictionCount() != 1 {
		t.Errorf("evictions = %d, want 1", s.EvictionCount())
	}
}

// With idempotency on (the coordinator's setting), a duplicate submission
// waits for the collective instead of erroring — the first values win.
func TestIdempotentResubmission(t *testing.T) {
	s := NewServer(2)
	s.SetIdempotent(true)
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})

	var wg sync.WaitGroup
	var first, dup []float64
	wg.Add(2)
	go func() { defer wg.Done(); first, _ = s.AggregateModel(0, 0, []float64{2}) }()
	go func() {
		defer wg.Done()
		// Wait for client 0's first submission to land, then resubmit.
		for {
			s.mu.Lock()
			var landed bool
			if o := s.ops[opKey{round: 0, kind: "model"}]; o != nil {
				landed = o.submitted[0]
			}
			s.mu.Unlock()
			if landed {
				break
			}
			time.Sleep(time.Millisecond)
		}
		dup, _ = s.AggregateModel(0, 0, []float64{999})
	}()
	// Fill the barrier.
	res, err := s.AggregateModel(1, 0, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for _, r := range [][]float64{first, dup, res} {
		if len(r) != 1 || r[0] != 3 {
			t.Errorf("result = %v, want [3] (duplicate's 999 must not count)", r)
		}
	}
}

// A readmitted client re-enters the roster and participates again.
func TestReadmitAfterEviction(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(40 * time.Millisecond)
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})
	if _, err := s.AggregateModel(0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if got := s.Evicted(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Evicted() = %v, want [1]", got)
	}

	s.Readmit(1)
	s.SetRoster([]int{0, 1})
	s.BeginRound(1, []int{0, 1})
	var wg sync.WaitGroup
	var ra, rb []float64
	wg.Add(2)
	go func() { defer wg.Done(); ra, _ = s.AggregateModel(0, 1, []float64{1}) }()
	go func() { defer wg.Done(); rb, _ = s.AggregateModel(1, 1, []float64{3}) }()
	wg.Wait()
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 1 || r[0] != 2 {
			t.Errorf("post-readmit result = %v, want [2]", r)
		}
	}
}

// The context-aware wait aborts on cancellation without losing the
// submission: the barrier still completes for everyone else.
func TestAggregateCtxCancelAbortsWait(t *testing.T) {
	s := NewServer(2)
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.AggregateModelCtx(ctx, 0, 0, []float64{2})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled wait returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still blocked")
	}

	// Client 0's submission survives; client 1 fills the barrier and gets
	// the mean over both.
	res, err := s.AggregateModel(1, 0, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 3 {
		t.Errorf("result = %v, want [3]", res)
	}
}

// An explicit roster with non-contiguous ids (dynamic membership) barriers
// on exactly those ids.
func TestRosterWithNonContiguousIDs(t *testing.T) {
	s := NewServer(2)
	s.SetRoster([]int{3, 7})
	s.BeginRound(0, []int{3, 7})
	var wg sync.WaitGroup
	var ra, rb []float64
	wg.Add(2)
	go func() { defer wg.Done(); ra, _ = s.AggregateModel(3, 0, []float64{1}) }()
	go func() { defer wg.Done(); rb, _ = s.AggregateModel(7, 0, []float64{5}) }()
	wg.Wait()
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 1 || r[0] != 3 {
			t.Errorf("result = %v, want [3]", r)
		}
	}
}
