package fl

import (
	"context"
	"math"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/netem"
	"fedsu/internal/nn"
)

func TestEvalEverySkipsEvaluation(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 0)
	stats, err := e.Run(context.Background(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 0,1 skipped; round 2 (i=2 → (i+1)%3==0) evaluated; 3 skipped;
	// 4 evaluated (final).
	wantEval := []bool{false, false, true, false, true}
	for i, st := range stats {
		got := st.Accuracy >= 0
		if got != wantEval[i] {
			t.Errorf("round %d evaluated=%v, want %v", i, got, wantEval[i])
		}
	}
}

func TestWireParamsScalesRoundTime(t *testing.T) {
	build := func(wire int) float64 {
		ds := data.Synthesize(data.SynthConfig{
			Name: "w", Channels: 1, Size: 8, Classes: 2,
			Samples: 64, Noise: 0.2, Seed: 1,
		})
		cfg := DefaultConfig(2)
		cfg.LocalIters, cfg.BatchSize = 1, 2
		cfg.EvalSamples = 8
		cfg.WireParams = wire
		builder := func() *nn.Model {
			return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 2, Seed: 1}, 4)
		}
		factory, err := StrategyFactory("fedavg")
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(cfg, builder, ds, factory)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.RunRound(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
		return st.Duration
	}
	small := build(10_000)
	big := build(10_000_000)
	if big <= small {
		t.Errorf("paper-scale wire params (%.2fs) must cost more than small (%.2fs)", big, small)
	}
	// 10M params at 13.7 Mbps should take minutes-scale rounds like the
	// paper's ResNet (~150 s).
	if big < 30 || big > 600 {
		t.Errorf("10M-param round = %.1fs, want paper-like magnitude (30-600s)", big)
	}
}

// TestFedSUAccuracyParity is the paper's core claim at test scale: FedSU's
// final accuracy must not be materially below FedAvg's on the same
// workload, seeds, and round budget.
func TestFedSUAccuracyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	_, fedavg := tinyEngine(t, "fedavg", 30)
	_, fedsu := tinyEngine(t, "fedsu", 30)
	accOf := func(stats []RoundStats) float64 {
		last := math.NaN()
		for _, st := range stats {
			if st.Accuracy >= 0 {
				last = st.Accuracy
			}
		}
		return last
	}
	fa, fs := accOf(fedavg), accOf(fedsu)
	if fs < fa-0.1 {
		t.Errorf("FedSU accuracy %.3f materially below FedAvg %.3f", fs, fa)
	}
}

func TestEngineLatencyContributes(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "lat", Channels: 1, Size: 8, Classes: 2,
		Samples: 64, Noise: 0.2, Seed: 1,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 2, Seed: 1}, 4)
	}
	factory, _ := StrategyFactory("fedavg")
	dur := func(latency float64) float64 {
		cfg := DefaultConfig(2)
		cfg.LocalIters, cfg.BatchSize, cfg.EvalSamples = 1, 2, 8
		cfg.Netem = netem.DefaultConfig(2)
		cfg.Netem.LatencySeconds = latency
		e, err := NewEngine(cfg, builder, ds, factory)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.RunRound(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
		return st.Duration
	}
	if d1, d2 := dur(0.01), dur(5); d2-d1 < 9 {
		t.Errorf("5s latency should add ~10s (2 legs): %v vs %v", d1, d2)
	}
}
