package fl

import (
	"context"
	"fmt"
)

// Remote tiers. A Tree normally folds every tier in-process, but the
// flrpc deployment splits the tree across machines: a leaf aggregator
// (relay) folds its aligned block of the cohort roster locally and ships
// ONE (sum, weight) partial to the coordinator, which injects it here in
// place of the block's member submissions. Two pieces make that work:
//
//   - AggregatePartial, the receiving side: the partial resolves the
//     whole leaf block at once — its members are marked submitted, the
//     partial is staged into the leaf's parent at the leaf's child rank,
//     and the caller blocks until the root publishes, exactly like a
//     member submission would.
//   - SetUpstream, the sending side: a tree covering one aligned block of
//     a larger roster completes its root WITHOUT scaling and forwards the
//     raw partial through the hook; the global the hook returns is what
//     the local waiters receive.
//
// Because the relay's block is an aligned rank block and its local fold
// is the same canonical pairwise order, the partial it ships is
// bit-identical to the leaf fold the coordinator would have computed
// itself — the distributed tree and the in-process tree agree to the
// last bit (TestTreePartialBitIdentity).

// UpstreamFunc forwards a subtree's completed root partial to the
// enclosing tree and returns the published global. rankLo is the
// subtree's first rank in the enclosing roster; sum is the raw canonical
// sum over weight contributors (nil sum with zero weight when every
// member was evicted). The hook runs on the completing submitter's
// goroutine with no Tree lock held, so it may block on network I/O.
type UpstreamFunc func(round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error)

// SetUpstream switches the tree into subtree (relay) mode: the root
// forwards its raw partial through fn instead of scaling a mean, and
// publishes fn's return to every local waiter. rankLo is this subtree's
// first rank within the enclosing roster (it must be leaf-aligned there).
// Must be set before the first collective and not changed while
// collectives are in flight.
func (t *Tree) SetUpstream(rankLo int, fn UpstreamFunc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.upstream = fn
	t.upstreamBase = rankLo
}

// AggregatePartial is AggregatePartialCtx without cancellation.
func (t *Tree) AggregatePartial(round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	return t.AggregatePartialCtx(context.Background(), round, kind, rankLo, sum, weight)
}

// AggregatePartialCtx stages an already-folded partial for the aligned
// leaf block starting at roster rank rankLo, resolving that block's
// members in one message, and blocks until the collective's global is
// published. weight is the contributor count folded into sum; weight 0
// (nil sum) reports an empty block (every member evicted at the remote
// leaf). sum is not retained past the call.
//
// A resubmission of a block that was already resolved by a remote
// partial is idempotent (it waits and returns the published global, the
// retry-after-reconnect contract of flrpc); a partial for a block with
// direct member submissions, or one that expired, is an error.
func (t *Tree) AggregatePartialCtx(ctx context.Context, round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	t.mu.Lock()
	n := len(t.roster)
	if n == 0 {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: partial submitted before SetRoster")
	}
	if rankLo < 0 || rankLo >= n || rankLo%t.fanout != 0 {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: partial rank %d is not an aligned leaf block of a %d-member roster (fanout %d)", rankLo, n, t.fanout)
	}
	key := opKey{round: round, kind: kind}
	c := t.colLocked(key)
	if len(c.tiers) < 2 {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: roster of %d fits a single tier at fanout %d; submit members directly", n, t.fanout)
	}
	leaf := c.leafFor(rankLo, t.fanout)
	if leaf.done {
		if leaf.remote {
			// Idempotent resubmission after a transport retry: the first
			// copy already resolved the block; hand back the same global.
			t.mu.Unlock()
			return t.wait(ctx, c, nil, -1)
		}
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: leaf block at rank %d already resolved (expired or folded locally)", rankLo)
	}
	if leaf.subs > 0 {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: leaf block at rank %d has %d direct member submissions; a remote partial cannot replace a partially folded block", rankLo, leaf.subs)
	}
	if weight < 0 || weight > leaf.need {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: partial weight %d outside the block's %d members", weight, leaf.need)
	}
	if weight > 0 && len(sum) == 0 {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: partial weight %d with empty sum", weight)
	}
	// The partial speaks for every member of the block: they are submitted
	// (a later direct submission is a double-submit) and no longer pending
	// (deadline expiry must not evict them).
	hi := rankLo + t.fanout
	if hi > n {
		hi = n
	}
	for r := rankLo; r < hi; r++ {
		id := t.roster[r]
		c.submit[id] = true
		if c.pending[id] {
			delete(c.pending, id)
			c.subs++
		}
	}
	leaf.done = true
	leaf.remote = true
	parent := c.tiers[1][leaf.index/t.fanout]
	childRank := leaf.index % t.fanout
	if weight > 0 {
		t.partials++
		leaf.contribed = true
	} else {
		t.tierEvictions[1]++
	}
	t.mu.Unlock()

	// Stage outside the lock, by reference — this handler blocks inside
	// wait until the collective closes, exactly the Aggregate ownership
	// contract, so the caller's buffer is recyclable on return. An
	// abandoned wait detaches it from the parent fold first.
	detach := -1
	if weight > 0 {
		detach = parent.fold.stageWeighted(childRank, sum, weight)
	} else {
		parent.fold.stageWeighted(childRank, nil, 0)
	}
	t.mu.Lock()
	parent.subs++
	ready := t.nodeReadyLocked(parent)
	t.mu.Unlock()
	if ready {
		t.cascade(c, parent)
	}
	var detachNode *treeTierNode
	if detach >= 0 {
		detachNode = parent
	}
	return t.wait(ctx, c, detachNode, detach)
}
