package fl

import (
	"context"
	"math"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/netem"
	"fedsu/internal/nn"
)

func tinyEngine(t *testing.T, strategy string, rounds int) (*Engine, []RoundStats) {
	t.Helper()
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 512, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	cfg := Config{
		NumClients:     4,
		LocalIters:     5,
		BatchSize:      8,
		LR:             0.05,
		WeightDecay:    0.0005,
		DirichletAlpha: 1.0,
		EvalSamples:    128,
		EvalBatch:      64,
		Seed:           3,
	}
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	factory, err := StrategyFactory(strategy)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, builder, ds, factory)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run(context.Background(), rounds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e, stats
}

func TestEngineFedAvgLearns(t *testing.T) {
	_, stats := tinyEngine(t, "fedavg", 12)
	first, last := stats[0], stats[len(stats)-1]
	if last.Accuracy <= 0.5 {
		t.Errorf("final accuracy = %v, want > 0.5", last.Accuracy)
	}
	if last.Loss >= first.Loss {
		t.Errorf("loss did not decrease: %v → %v", first.Loss, last.Loss)
	}
	if last.SimTime <= 0 || last.Duration <= 0 {
		t.Error("simulated time must advance")
	}
}

func TestEngineAllStrategiesRun(t *testing.T) {
	for _, s := range StrategyNames() {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			e, stats := tinyEngine(t, s, 8)
			if len(stats) != 8 {
				t.Fatalf("got %d round stats", len(stats))
			}
			if e.Strategy() != s {
				t.Errorf("Strategy() = %q, want %q", e.Strategy(), s)
			}
			for _, st := range stats {
				if st.Traffic.UpBytes <= 0 || st.Traffic.DownBytes <= 0 {
					t.Errorf("round %d: no traffic recorded", st.Round)
				}
				if math.IsNaN(st.TrainLoss) {
					t.Errorf("round %d: NaN train loss", st.Round)
				}
			}
		})
	}
}

func TestEngineClientsStayConsistent(t *testing.T) {
	// After every round all clients must hold the identical model — the
	// invariant FedSU's client-local mask bookkeeping depends on.
	for _, s := range []string{"fedavg", "apf", "fedsu"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			e, _ := tinyEngine(t, s, 6)
			ref := e.Clients()[0].Model().Vector()
			for _, c := range e.Clients()[1:] {
				v := c.Model().Vector()
				for i := range ref {
					if v[i] != ref[i] {
						t.Fatalf("client %d diverged from client 0 at param %d: %v vs %v",
							c.ID, i, v[i], ref[i])
					}
				}
			}
		})
	}
}

func TestEngineFedSUSparsifies(t *testing.T) {
	_, stats := tinyEngine(t, "fedsu", 40)
	// By late training a meaningful share of parameters should be
	// speculative and the byte-level savings positive.
	tail := stats[len(stats)-5:]
	maxPred, maxRatio := 0.0, 0.0
	for _, st := range tail {
		if st.PredictableFraction > maxPred {
			maxPred = st.PredictableFraction
		}
		if st.SparsificationRatio > maxRatio {
			maxRatio = st.SparsificationRatio
		}
	}
	if maxPred == 0 {
		t.Error("FedSU never marked any parameter predictable")
	}
	if maxRatio <= 0 {
		t.Error("FedSU achieved no byte savings")
	}
}

func TestEngineParticipationQuorum(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 2,
		Samples: 128, Noise: 0.2, Seed: 1,
	})
	cfg := DefaultConfig(10)
	cfg.LocalIters = 2
	cfg.BatchSize = 4
	cfg.EvalSamples = 32
	cfg.Netem = netem.DefaultConfig(10)
	cfg.Netem.Participation = 0.7
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 2, Seed: 2}, 8)
	}
	factory, err := StrategyFactory("fedavg")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, builder, ds, factory)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.RunRound(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Participants != 7 {
		t.Errorf("participants = %d, want 7 of 10", st.Participants)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "x", Channels: 1, Size: 4, Classes: 2, Samples: 16, Noise: 0.1, Seed: 1,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 4, NumClasses: 2, Seed: 1}, 4)
	}
	factory, _ := StrategyFactory("fedavg")
	bad := []Config{
		{NumClients: 0, LocalIters: 1, BatchSize: 1},
		{NumClients: 2, LocalIters: 0, BatchSize: 1},
		{NumClients: 2, LocalIters: 1, BatchSize: 0},
	}
	for _, cfg := range bad {
		if _, err := NewEngine(cfg, builder, ds, factory); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
}

func TestStrategyFactoryUnknown(t *testing.T) {
	if _, err := StrategyFactory("bogus"); err == nil {
		t.Error("unknown strategy must error")
	}
}
