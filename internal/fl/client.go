package fl

import (
	"context"
	"fmt"
	"math/rand"

	"fedsu/internal/data"
	"fedsu/internal/nn"
	"fedsu/internal/opt"
	"fedsu/internal/sparse"
	"fedsu/internal/tensor"
)

// Client is one federated participant: a private model replica, an
// optimizer, a local data shard, and a synchronization strategy.
type Client struct {
	// ID is the stable client identifier used by the aggregation server.
	ID int

	model  *nn.Model
	dt     tensor.DType
	opt    *opt.SGD
	shard  *data.Subset
	syncer sparse.Syncer
	rng    *rand.Rand

	vec []float64

	// proxMu enables a FedProx-style proximal term μ/2·‖x − x_round‖² in
	// the local objective (Li et al., MLSys 2020), the non-IID mitigation
	// the paper notes FedSU composes with. Zero disables it.
	proxMu   float64
	roundVec []float64
}

// NewClient assembles a client. The model must be a fresh replica with the
// same layout and initialization as every other client's.
func NewClient(id int, model *nn.Model, optimizer *opt.SGD, shard *data.Subset, syncer sparse.Syncer, seed int64) *Client {
	return &Client{
		ID:     id,
		model:  model,
		dt:     model.DType(),
		opt:    optimizer,
		shard:  shard,
		syncer: syncer,
		rng:    rand.New(rand.NewSource(seed)),
		vec:    make([]float64, model.Size()),
	}
}

// Model exposes the client's model replica (used by evaluation and
// microscopes; treat as read-only between rounds).
func (c *Client) Model() *nn.Model { return c.model }

// Syncer exposes the client's synchronization strategy.
func (c *Client) Syncer() sparse.Syncer { return c.syncer }

// ShardSize returns the number of local samples.
func (c *Client) ShardSize() int { return c.shard.Len() }

// SetProximal enables the FedProx proximal term with coefficient mu
// (0 disables it).
func (c *Client) SetProximal(mu float64) { c.proxMu = mu }

// TrainLocal runs iters mini-batch SGD iterations on the local shard and
// returns the mean training loss. With a proximal coefficient set, each
// iteration's gradient is augmented with μ(x − x_round), anchoring local
// training to the round-start (global) model.
func (c *Client) TrainLocal(iters, batchSize int) float64 {
	// A client whose shard is empty — possible once cohorts are sampled
	// from a population far larger than the corpus — trains nothing and
	// later submits its unchanged round-start replica (plain FedAvg
	// semantics for a data-less device).
	if c.shard.Len() == 0 {
		return 0
	}
	if c.proxMu > 0 {
		if c.roundVec == nil {
			c.roundVec = make([]float64, c.model.Size())
		}
		c.model.ExtractVector(c.roundVec)
	}
	total := 0.0
	for it := 0; it < iters; it++ {
		x, labels := c.shard.SampleBatchOf(c.dt, c.rng, batchSize)
		c.model.ZeroGrad()
		total += c.model.TrainStep(x, labels)
		if c.proxMu > 0 {
			c.addProximalGrad()
		}
		c.opt.Step(c.model.Params())
	}
	return total / float64(iters)
}

// addProximalGrad accumulates μ(x − x_round) into the parameter gradients.
// The arithmetic runs at the parameter storage width (the same policy as
// the SGD update it augments); the float64 anchor values were extracted
// from the same-width model, so narrowing them back is exact.
func (c *Client) addProximalGrad() {
	off := 0
	for _, p := range c.model.Params() {
		n := p.Value.Len()
		if !p.NoOpt {
			anchor := c.roundVec[off : off+n]
			if c.dt == tensor.Float32 {
				proximalGrad(tensor.DataOf[float32](p.Value), tensor.DataOf[float32](p.Grad), anchor, float32(c.proxMu)) //lint:allow precision -- proximal coefficient rounds once at the dispatch boundary
			} else {
				proximalGrad(tensor.DataOf[float64](p.Value), tensor.DataOf[float64](p.Grad), anchor, c.proxMu)
			}
		}
		off += n
	}
}

// proximalGrad adds mu·(v − anchor) to g at storage width.
func proximalGrad[E tensor.Elem](v, g []E, anchor []float64, mu E) {
	for i := range v {
		g[i] += mu * (v[i] - E(anchor[i])) //lint:allow precision -- anchor narrows exactly: it was extracted from this same-width model
	}
}

// SyncRound extracts the post-training vector, runs the strategy's
// synchronization for the round, loads the resulting vector back into the
// model, and returns the traffic accounting.
func (c *Client) SyncRound(round int, contributor bool) (sparse.Traffic, error) {
	return c.SyncRoundCtx(context.Background(), round, contributor)
}

// SyncRoundCtx is SyncRound with a context propagated into the strategy's
// collectives (when both the strategy and the aggregator support it), so a
// cancelled round does not leave the client parked on a barrier forever.
func (c *Client) SyncRoundCtx(ctx context.Context, round int, contributor bool) (sparse.Traffic, error) {
	c.model.ExtractVector(c.vec)
	out, tr, err := sparse.SyncContext(ctx, c.syncer, round, c.vec, contributor)
	if err != nil {
		return sparse.Traffic{}, fmt.Errorf("client %d: %w", c.ID, err)
	}
	c.model.LoadVector(out)
	return tr, nil
}
