package fl

import (
	"fmt"
	"sort"

	"fedsu/internal/core"
	"fedsu/internal/sparse"
)

// StrategyFactory resolves a strategy name to its client-syncer factory.
// Recognized names: "fedavg", "cmfl", "apf", "fedsu", "fedsu-v1",
// "fedsu-v2".
func StrategyFactory(name string) (sparse.Factory, error) {
	return StrategyFactoryWith(name, core.DefaultOptions())
}

// StrategyFactoryWith is StrategyFactory with explicit FedSU options for
// the fedsu* strategies (ignored by the baselines).
func StrategyFactoryWith(name string, opts core.Options) (sparse.Factory, error) {
	switch name {
	case "fedavg":
		return sparse.FedAvgFactory, nil
	case "cmfl":
		return sparse.CMFLFactory, nil
	case "apf":
		return sparse.APFFactory, nil
	case "qsgd":
		return sparse.QSGDFactory, nil
	case "fedsu":
		opts.Variant = core.VariantFull
		return core.Factory(opts), nil
	case "fedsu-v1":
		opts.Variant = core.VariantV1
		return core.Factory(opts), nil
	case "fedsu-v2":
		opts.Variant = core.VariantV2
		return core.Factory(opts), nil
	default:
		return nil, fmt.Errorf("fl: unknown strategy %q (known: %v)", name, StrategyNames())
	}
}

// StrategyNames lists the recognized strategy names.
func StrategyNames() []string {
	names := []string{"fedavg", "cmfl", "apf", "qsgd", "fedsu", "fedsu-v1", "fedsu-v2"}
	sort.Strings(names)
	return names
}
