package fl

import (
	"context"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/netem"
	"fedsu/internal/nn"
)

// TestStrategiesSurviveDropouts is failure injection against every
// strategy: with 25 % of clients crashing per round (abstaining from the
// collectives), training must keep running, the fleet must stay consistent,
// and even an all-dropout round must not wedge the barrier.
func TestStrategiesSurviveDropouts(t *testing.T) {
	for _, scheme := range StrategyNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			ds := data.Synthesize(data.SynthConfig{
				Name: "drop", Channels: 1, Size: 8, Classes: 3,
				Samples: 192, Noise: 0.2, Seed: 17,
			})
			cfg := DefaultConfig(6)
			cfg.LocalIters, cfg.BatchSize = 3, 4
			cfg.EvalSamples = 32
			cfg.Seed = 5
			cfg.Netem = netem.DefaultConfig(6)
			cfg.Netem.DropoutProb = 0.25
			builder := func() *nn.Model {
				return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 3, Seed: 2}, 12)
			}
			factory, err := StrategyFactory(scheme)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(cfg, builder, ds, factory)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := e.Run(context.Background(), 12, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) != 12 {
				t.Fatalf("stats = %d rounds", len(stats))
			}
			// Fleet consistency under churn of contributors.
			ref := e.Clients()[0].Model().Vector()
			for _, c := range e.Clients()[1:] {
				v := c.Model().Vector()
				for i := range ref {
					if v[i] != ref[i] {
						t.Fatalf("client %d diverged at param %d", c.ID, i)
					}
				}
			}
		})
	}
}

func TestEngineSurvivesTotalDropoutRound(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "total", Channels: 1, Size: 8, Classes: 2,
		Samples: 64, Noise: 0.2, Seed: 1,
	})
	cfg := DefaultConfig(3)
	cfg.LocalIters, cfg.BatchSize = 1, 2
	cfg.EvalSamples = 8
	cfg.Netem = netem.DefaultConfig(3)
	cfg.Netem.DropoutProb = 1 // nobody ever returns
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 2, Seed: 1}, 4)
	}
	factory, _ := StrategyFactory("fedavg")
	e, err := NewEngine(cfg, builder, ds, factory)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.RunRound(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Participants != 0 {
		t.Errorf("participants = %d, want 0", st.Participants)
	}
	if st.Duration <= 0 {
		t.Error("wasted round must consume emulated time")
	}
}
