package fl

import (
	"fmt"
	"sort"
)

// Population is the registry of every client known to the federation —
// the 10^5–10^6 registered descriptors from which each round samples a
// cohort (client subsampling is the first-class communication knob of
// cross-device FL: most registered clients sit idle most rounds). The
// registry itself is deliberately lean — a descriptor is an id plus the
// shard size used for weighting and the profile seed netem derives a
// heterogeneous client from — so holding 10^6 of them is a few dozen
// megabytes, not a few dozen servers.
//
// # Cohort sampling determinism
//
// SampleCohort(round, k) draws k members without replacement, determined
// entirely by (population seed, round, member id):
//
//   - each member's priority for a round is an avalanche hash of
//     (seed, round, id) — no math/rand stream whose state depends on call
//     history;
//   - the cohort is the k smallest priorities, ties broken by ascending
//     id (hash collisions are astronomically rare but must not make the
//     draw depend on sort internals);
//   - therefore the draw is independent of registration order, of any
//     other round's draw, and of par worker count (nothing here is
//     parallel or order-sensitive).
//
// Distinct rounds permute the priorities independently, so cohorts vary
// round to round; within one round a member appears at most once (its
// priority is a single number). DESIGN.md §5k records this contract.
type Population struct {
	seed    int64
	members []Member
	byID    map[int]int
	sorted  bool
}

// Member is one registered client descriptor.
type Member struct {
	// ID is the stable population-wide client identifier.
	ID int
	// ShardSize is the member's local dataset size (used by weighted
	// aggregation policies and by the netem compute model).
	ShardSize int
	// ProfileSeed personalizes the member's netem profile (bandwidth,
	// compute speed); zero lets netem derive one from (seed, ID).
	ProfileSeed int64
}

// NewPopulation creates an empty registry whose cohort draws are keyed by
// seed.
func NewPopulation(seed int64) *Population {
	return &Population{seed: seed, byID: map[int]int{}}
}

// Seed returns the sampling seed the registry was created with.
func (p *Population) Seed() int64 { return p.seed }

// Register adds (or updates) a member descriptor. Registration order is
// irrelevant to sampling; re-registering an id replaces its descriptor.
func (p *Population) Register(m Member) {
	if i, ok := p.byID[m.ID]; ok {
		p.members[i] = m
		return
	}
	p.byID[m.ID] = len(p.members)
	p.members = append(p.members, m)
	p.sorted = false
}

// RegisterN bulk-registers ids 0..n-1 with uniform shard size — the
// synthetic-population path of fedsu-sim and the benchmarks.
func (p *Population) RegisterN(n, shardSize int) {
	for id := 0; id < n; id++ {
		p.Register(Member{ID: id, ShardSize: shardSize})
	}
}

// Len returns the number of registered members.
func (p *Population) Len() int { return len(p.members) }

// Member returns the descriptor for id.
func (p *Population) Member(id int) (Member, bool) {
	i, ok := p.byID[id]
	if !ok {
		return Member{}, false
	}
	return p.members[i], true
}

// SampleCohort draws the round's cohort: the k registered ids with the
// smallest (seed, round, id) hash priorities, returned in ascending id
// order (the roster order the aggregation tier ranks by). k larger than
// the population returns everyone. The draw is deterministic given
// (seed, round) and independent of registration order and worker count.
func (p *Population) SampleCohort(round, k int) []int {
	n := len(p.members)
	if k >= n {
		out := make([]int, 0, n)
		for _, m := range p.members {
			out = append(out, m.ID)
		}
		sortInts(out)
		return out
	}
	if k <= 0 {
		return nil
	}
	// Selection by bounded max-heap over (priority, id): O(n log k) with
	// no allocation beyond the result — at 10^6 members and k=10^3 this is
	// the difference between a draw and a sort of the whole registry.
	type cand struct {
		pri uint64
		id  int
	}
	heap := make([]cand, 0, k)
	worse := func(a, b cand) bool { // is a worse (greater) than b?
		return a.pri > b.pri || (a.pri == b.pri && a.id > b.id)
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && worse(heap[l], heap[big]) {
				big = l
			}
			if r < len(heap) && worse(heap[r], heap[big]) {
				big = r
			}
			if big == i {
				return
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	for _, m := range p.members {
		c := cand{pri: cohortPriority(p.seed, round, m.ID), id: m.ID}
		if len(heap) < k {
			heap = append(heap, c)
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !worse(heap[i], heap[parent]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if worse(heap[0], c) {
			heap[0] = c
			siftDown(0)
		}
	}
	out := make([]int, len(heap))
	for i, c := range heap {
		out[i] = c.id
	}
	sortInts(out)
	return out
}

// cohortPriority hashes (seed, round, id) with a SplitMix64-style
// avalanche finisher: a fixed bijection of the combined key, so equal
// priorities imply equal (round, id) for a given seed, and every bit of
// the key diffuses into the priority.
func cohortPriority(seed int64, round, id int) uint64 {
	x := uint64(seed)
	x ^= uint64(round)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= uint64(uint32(id)) * 0xd1342543de82ef95
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CohortWeights returns the shard sizes of the given cohort ids, aligned
// by index (the weighting input for size-weighted policies).
func (p *Population) CohortWeights(cohort []int) []int {
	out := make([]int, len(cohort))
	for i, id := range cohort {
		if m, ok := p.Member(id); ok {
			out[i] = m.ShardSize
		}
	}
	return out
}

// IDs returns every registered id in ascending order.
func (p *Population) IDs() []int {
	out := make([]int, 0, len(p.members))
	for _, m := range p.members {
		out = append(out, m.ID)
	}
	sort.Ints(out)
	return out
}

// Validate checks registry invariants (no duplicate ids by construction;
// shard sizes non-negative) and returns a descriptive error for the first
// violation.
func (p *Population) Validate() error {
	for _, m := range p.members {
		if m.ShardSize < 0 {
			return fmt.Errorf("fl: population member %d has negative shard size %d", m.ID, m.ShardSize)
		}
	}
	return nil
}
