package fl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fedsu/internal/par"
)

// These tests enforce the tentpole invariant of the streaming sharded
// aggregation: the mean must be bit-identical to the canonical reference
// — a fixed balanced pairwise tree over ascending-id roster ranks, padded
// to a power of two with absent ranks as the identity, scaled by 1/n —
// at every par worker count and every submission arrival order.
// canonicalMean IS that reference, written as the obviously-correct
// recursive tree so the streaming binary-counter implementation in
// fold.go is checked against an independent formulation. The same
// canonical order is what the hierarchical tree (tree.go) reproduces,
// which is how tree runs stay bit-identical to the flat server.

// canonicalMean computes the reference mean over ranked contributions:
// ranked[r] is the vector at roster rank r, or nil for a rank that
// resolved without contributing (abstain, non-participant, evicted).
func canonicalMean(ranked [][]float64) []float64 {
	sum, n := canonicalSum(ranked)
	if sum == nil {
		return nil
	}
	inv := 1.0 / float64(n)
	for i := range sum {
		sum[i] *= inv
	}
	return sum
}

// canonicalSum evaluates the balanced pairwise tree over ranks padded to
// the next power of two; nil ranks merge as the identity (no arithmetic).
func canonicalSum(ranked [][]float64) ([]float64, int) {
	span := 1
	for span < len(ranked) {
		span <<= 1
	}
	n := 0
	var rec func(lo, span int) []float64
	rec = func(lo, span int) []float64 {
		if span == 1 {
			if lo < len(ranked) && ranked[lo] != nil {
				n++
				out := make([]float64, len(ranked[lo]))
				copy(out, ranked[lo])
				return out
			}
			return nil
		}
		l := rec(lo, span/2)
		r := rec(lo+span/2, span/2)
		if l == nil {
			return r
		}
		if r == nil {
			return l
		}
		for i := range l {
			l[i] += r[i]
		}
		return l
	}
	return rec(0, span), n
}

// referenceMean is the historical serial finish(): a left fold over
// contributions in ascending client-id order, scaled by 1/n. The
// buffered-async path still folds in arrival order and its K=N special
// case is pinned to this algorithm (see server_async_test.go); the
// barrier path has moved to the canonical pairwise order above.
func referenceMean(byID map[int][]float64) []float64 {
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sortInts(ids)
	if len(ids) == 0 {
		return nil
	}
	sum := make([]float64, len(byID[ids[0]]))
	for _, id := range ids {
		v := byID[id]
		for i := range sum {
			sum[i] += v[i]
		}
	}
	inv := 1.0 / float64(len(ids))
	for i := range sum {
		sum[i] *= inv
	}
	return sum
}

// contributionFor builds a reproducible, rounding-sensitive vector for a
// client: mixed magnitudes make the float64 fold order observable, so any
// deviation from ascending-id left-fold changes bits.
func contributionFor(id, size int) []float64 {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	v := make([]float64, size)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64((i+id)%9-4))
	}
	return v
}

// submitInOrder forces an exact arrival order: each client's submission is
// launched only after the previous one has fully registered (its subs
// increment is visible under the server lock). Returns the per-client
// results once the barrier releases.
func submitInOrder(t *testing.T, s *Server, round int, order []int, vecs map[int][]float64) (map[int][]float64, map[int]error) {
	t.Helper()
	results := make(map[int][]float64, len(order))
	errs := make(map[int]error, len(order))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k, id := range order {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res, err := s.AggregateModel(id, round, vecs[id])
			mu.Lock()
			results[id], errs[id] = res, err
			mu.Unlock()
		}(id)
		waitSubs(t, s, round, "model", k+1)
	}
	wg.Wait()
	return results, errs
}

// waitSubs polls until the collective has registered want submissions.
func waitSubs(t *testing.T, s *Server, round int, kind string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		subs := -1
		if o := s.ops[opKey{round: round, kind: kind}]; o != nil {
			subs = o.subs
		}
		s.mu.Unlock()
		if subs >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d submissions to %s/%d", want, kind, round)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func sameBits(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestAggregateBitDeterminism is the tentpole guarantee: across worker
// counts 1, 2, 7 and across sorted, reversed, and shuffled arrival orders,
// the streaming fold must equal the canonical pairwise reference to the
// last bit. Size 5000 spans several foldGrain blocks so the parallel path
// actually shards.
func TestAggregateBitDeterminism(t *testing.T) {
	const clients, size = 10, 5000
	vecs := make(map[int][]float64, clients)
	ranked := make([][]float64, clients) // roster {0..9}: rank == id
	participants := make([]int, 0, clients)
	for id := 0; id < clients; id++ {
		switch {
		case id == 4: // abstainer: synchronizes but submits nil
			vecs[id] = nil
		case id == 7: // non-participant: submits values that must not count
			vecs[id] = contributionFor(id, size)
		default:
			vecs[id] = contributionFor(id, size)
			ranked[id] = vecs[id]
		}
		if id != 7 {
			participants = append(participants, id)
		}
	}
	want := canonicalMean(ranked)

	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		rand.New(rand.NewSource(1)).Perm(clients),
		rand.New(rand.NewSource(2)).Perm(clients),
	}
	for _, workers := range []int{1, 2, 7} {
		prev := par.SetWorkers(workers)
		for oi, order := range orders {
			s := NewServer(clients)
			s.BeginRound(0, participants)
			results, errs := submitInOrder(t, s, 0, order, vecs)
			for id, err := range errs {
				if err != nil {
					t.Fatalf("workers=%d order=%d client %d: %v", workers, oi, id, err)
				}
			}
			for id, res := range results {
				if !sameBits(res, want) {
					t.Fatalf("workers=%d order=%d client %d: result deviates from canonical pairwise reference", workers, oi, id)
				}
			}
		}
		par.SetWorkers(prev)
	}
}

// TestAggregateLengthMismatchDeterminism: the reported failure must be the
// one the serial finish() produced — the first ascending contributor whose
// length differs from the first contributor's — independent of arrival
// order and worker count, and every waiter must see it.
func TestAggregateLengthMismatchDeterminism(t *testing.T) {
	const clients = 6
	vecs := make(map[int][]float64, clients)
	participants := make([]int, clients)
	for id := 0; id < clients; id++ {
		participants[id] = id
		n := 40
		if id == 3 || id == 5 {
			n = 41 // two bad lengths: only the lower id may be reported
		}
		vecs[id] = contributionFor(id, n)
	}
	wantErr := fmt.Sprintf("fl: client %d submitted %d values, others %d", 3, 41, 40)

	orders := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{3, 5, 0, 2, 4, 1},
	}
	for _, workers := range []int{1, 2, 7} {
		prev := par.SetWorkers(workers)
		for oi, order := range orders {
			s := NewServer(clients)
			s.BeginRound(0, participants)
			results, errs := submitInOrder(t, s, 0, order, vecs)
			for id := 0; id < clients; id++ {
				if errs[id] == nil || errs[id].Error() != wantErr {
					t.Fatalf("workers=%d order=%d client %d: err = %v, want %q", workers, oi, id, errs[id], wantErr)
				}
				if results[id] != nil {
					t.Fatalf("workers=%d order=%d client %d: got a result alongside the failure", workers, oi, id)
				}
			}
		}
		par.SetWorkers(prev)
	}
}

// TestAggregateEvictionMidStreamBits: a barrier closed by deadline eviction
// must produce the bit-exact canonical mean over the clients that did
// submit — evicted ranks merge as the identity at their roster positions.
func TestAggregateEvictionMidStreamBits(t *testing.T) {
	const clients, size = 5, 3000
	submitters := []int{0, 2, 4} // 1 and 3 miss the deadline
	vecs := make(map[int][]float64)
	ranked := make([][]float64, clients)
	for _, id := range submitters {
		vecs[id] = contributionFor(id, size)
		ranked[id] = vecs[id]
	}
	want := canonicalMean(ranked)

	for _, workers := range []int{1, 7} {
		prev := par.SetWorkers(workers)
		s := NewServer(clients)
		s.SetDeadline(40 * time.Millisecond)
		s.BeginRound(0, []int{0, 1, 2, 3, 4})
		results, errs := submitInOrder(t, s, 0, []int{4, 0, 2}, vecs)
		for _, id := range submitters {
			if errs[id] != nil {
				t.Fatalf("workers=%d client %d: %v", workers, id, errs[id])
			}
			if !sameBits(results[id], want) {
				t.Fatalf("workers=%d client %d: eviction-closed mean deviates from reference", workers, id)
			}
		}
		if got := s.Evicted(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Fatalf("workers=%d evicted = %v, want [1 3]", workers, got)
		}
		par.SetWorkers(prev)
	}
}

// TestAggregateStrayContribution: a participant outside the barrier's
// roster snapshot still counts, interleaved at its id position — the
// refold path. Client 5 (stray, lowest... highest id) and roster client 0
// fill the need of a {0,1} roster; client 1 arrives after the close and
// receives the already-computed result.
func TestAggregateStrayContribution(t *testing.T) {
	const size = 2600
	v0 := contributionFor(0, size)
	v5 := contributionFor(5, size)
	// The stray-forced refold ranks the combined contributors densely in
	// ascending id order (roster positions are meaningless once an outside
	// id interleaves), so the reference is the canonical tree over [v0, v5].
	want := canonicalMean([][]float64{v0, v5})

	s := NewServer(6)
	s.SetRoster([]int{0, 1})
	s.BeginRound(0, []int{0, 1, 5})

	// Stray first, then a roster client; need=2 is met by the pair.
	results, errs := submitInOrder(t, s, 0, []int{5, 0}, map[int][]float64{5: v5, 0: v0})
	for _, id := range []int{0, 5} {
		if errs[id] != nil {
			t.Fatalf("client %d: %v", id, errs[id])
		}
		if !sameBits(results[id], want) {
			t.Fatalf("client %d: stray-interleaved mean deviates from reference", id)
		}
	}
	// Late roster client: the barrier already closed; it gets the result.
	late, err := s.AggregateModel(1, 0, contributionFor(1, size))
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(late, want) {
		t.Fatal("late submission received a different result than the barrier published")
	}
}

// TestAggregateCallerSliceNotAliased is the satellite aliasing fix: the
// server must stage its own copy, so mutating the submitted slice after an
// abandoned (cancelled) wait cannot corrupt the still-open barrier.
func TestAggregateCallerSliceNotAliased(t *testing.T) {
	s := NewServer(2)
	s.BeginRound(0, []int{0, 1})

	vec := []float64{10, 20, 30}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := s.AggregateModelCtx(ctx, 0, 0, vec)
		if err == nil {
			panic("cancelled wait returned no error")
		}
	}()
	waitSubs(t, s, 0, "model", 1)
	cancel()
	<-done
	// The caller reuses its buffer while the barrier is still open — the
	// historical bug turned this into corrupted means.
	vec[0], vec[1], vec[2] = -1e9, -1e9, -1e9

	res, err := s.AggregateModel(1, 0, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 12, 18}
	if !sameBits(res, want) {
		t.Fatalf("mean = %v, want %v: the server aliased the caller's slice", res, want)
	}
}
