package fl

import (
	"context"
	"fmt"

	"fedsu/internal/netem"
	"fedsu/internal/par"
	"fedsu/internal/sparse"
)

// runAsync is the buffered-async round driver: a discrete-event loop over
// per-client arrival processes (netem.AsyncProcess) replacing the
// synchronous quorum barrier. Each client cycles independently — pull the
// global, train locally, upload — and the server (in SetAsync mode) folds
// arrivals as they land, applying a new staleness-weighted global every
// Async.K contributions. `applies` counts global applications, the async
// analogue of rounds; one RoundStats is emitted per apply, aggregating the
// arrival window that produced it.
//
// Determinism contract (DESIGN.md §5i): the schedule is a pure function of
// the netem seed. Arrivals are processed strictly one at a time in
// simulated-time order (ties broken by client index); each client's jitter
// and dropout draws come from a private per-client RNG stream indexed by
// its own cycle count; and local training — though it overlaps real-time
// with the event loop via the par token pool — depends only on the
// client's own state and RNG. The fold itself is element-sharded
// (bit-identical at any worker count), so the same seed yields a
// bit-identical global trajectory across par.SetWorkers settings.
func (e *Engine) runAsync(ctx context.Context, applies, evalEvery int) ([]RoundStats, error) {
	n := len(e.clients)
	if n == 0 {
		return nil, fmt.Errorf("fl: async run with no clients")
	}
	proc := e.cluster.AsyncProcess()

	scale := float64(e.wireParams()) / float64(e.evalModel.Size())
	computeSec := e.compute.RoundCompute(e.wireParams(), e.cfg.LocalIters)
	full := int(float64(e.wire().DenseBytes(e.evalModel.Size())) * scale)
	loads := make([]netem.ClientLoad, n)
	for i := range loads {
		// First cycle: full dense exchange, like the sync driver's first
		// round; subsequent cycles use the client's actual encoded bytes.
		loads[i] = netem.ClientLoad{DownBytes: full, UpBytes: full, ComputeSeconds: computeSec}
	}

	// Local training runs ahead of the event loop: each client's cycle-k
	// training is launched when its cycle starts and harvested when its
	// arrival is processed. The par token pool bounds concurrent SGD
	// exactly as in the sync driver; synchronization (the server fold) is
	// NOT concurrent — the event loop serializes it in arrival order,
	// which is what the determinism contract requires.
	futures := make([]chan float64, n)
	launch := func(i int) {
		ch := make(chan float64, 1)
		futures[i] = ch
		go func() {
			par.AcquireToken()
			loss := e.clients[i].TrainLocal(e.cfg.LocalIters, e.cfg.BatchSize)
			par.ReleaseToken()
			ch <- loss
		}()
	}
	drain := func() {
		for _, ch := range futures {
			if ch != nil {
				<-ch
			}
		}
	}

	nextT := make([]float64, n)
	cycle := make([]int, n)
	for i := 0; i < n; i++ {
		launch(i)
		nextT[i] = e.simTime + proc.CycleTime(i, loads[i])
	}

	var out []RoundStats
	lastVer := e.server.AsyncVersion()
	targetVer := lastVer + applies
	lastDrops := e.server.StaleDropCount()
	lastApplyT := e.simTime

	// Per-apply window accumulators: everything that arrived since the
	// previous global application.
	var winTraffic sparse.Traffic
	winLoss, winRatio := 0.0, 0.0
	winSyncs := 0

	// Arrival budget against a starved configuration (event threshold so
	// high nobody ever contributes, or dropout eating every arrival):
	// generous headroom over the applies*K contributions actually needed.
	maxEvents := (applies*e.cfg.Async.K + n) * 64

	for events := 0; e.server.AsyncVersion() < targetVer; events++ {
		if err := ctx.Err(); err != nil {
			drain()
			return out, err
		}
		if events >= maxEvents {
			drain()
			return out, fmt.Errorf("fl: async run stalled after %d arrivals with %d/%d applies (event threshold too high or dropout too aggressive?)",
				events, len(out), applies)
		}

		// Earliest arrival; ties break to the lowest client index.
		i := 0
		for j := 1; j < n; j++ {
			if nextT[j] < nextT[i] {
				i = j
			}
		}
		now := nextT[i]
		loss := <-futures[i]
		futures[i] = nil
		e.simTime = now

		if !proc.Dropped(i) {
			tr, err := e.clients[i].SyncRoundCtx(ctx, cycle[i], true)
			if err != nil {
				drain()
				return out, fmt.Errorf("fl: async arrival (client %d, cycle %d): %w", e.clients[i].ID, cycle[i], err)
			}
			winTraffic.Add(tr)
			winLoss += loss
			winRatio += tr.SparsificationRatio()
			winSyncs++
			loads[i] = netem.ClientLoad{
				DownBytes:      int(float64(tr.DownBytes) * scale),
				UpBytes:        int(float64(tr.UpBytes) * scale),
				ComputeSeconds: computeSec,
			}
		}
		cycle[i]++

		if ver := e.server.AsyncVersion(); ver > lastVer {
			drops := e.server.StaleDropCount()
			st := RoundStats{
				Round:        ver - 1,
				Duration:     now - lastApplyT,
				SimTime:      now,
				Traffic:      winTraffic,
				Participants: e.cfg.Async.K,
				StaleDrops:   drops - lastDrops,
			}
			if winSyncs > 0 {
				st.TrainLoss = winLoss / float64(winSyncs)
				st.SparsificationRatio = winRatio / float64(winSyncs)
			}
			if ver%evalEvery == 0 || ver == targetVer {
				st.Accuracy, st.Loss = e.evaluateVector(e.server.AsyncGlobal())
			} else {
				st.Accuracy, st.Loss = -1, -1
			}
			out = append(out, st)
			lastVer, lastDrops, lastApplyT = ver, drops, now
			winTraffic = sparse.Traffic{}
			winLoss, winRatio, winSyncs = 0, 0, 0
		}

		launch(i)
		nextT[i] = now + proc.CycleTime(i, loads[i])
	}
	drain()
	e.round = lastVer
	return out, nil
}

// AsyncGlobal returns the server's current async global model (nil before
// the first application, or in synchronous mode). The slice is immutable
// by the apply contract.
func (e *Engine) AsyncGlobal() []float64 { return e.server.AsyncGlobal() }

// Server exposes the engine's aggregation server (read-mostly accessors:
// eviction counters, async version).
func (e *Engine) Server() *Server { return e.server }
