package fl

import (
	"sort"
	"testing"

	"fedsu/internal/core"
)

func TestStrategyNamesSorted(t *testing.T) {
	names := StrategyNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("names not sorted: %v", names)
	}
	if len(names) != 7 {
		t.Errorf("names = %v, want 7 entries", names)
	}
}

func TestStrategyFactoryWithVariantOverride(t *testing.T) {
	opts := core.DefaultOptions()
	tests := []struct {
		scheme string
		want   string
	}{
		{"fedsu", "fedsu"},
		{"fedsu-v1", "fedsu-v1"},
		{"fedsu-v2", "fedsu-v2"},
	}
	for _, tt := range tests {
		f, err := StrategyFactoryWith(tt.scheme, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := f(0, 4, NewServer(1))
		if s.Name() != tt.want {
			t.Errorf("scheme %q built syncer %q", tt.scheme, s.Name())
		}
	}
}

func TestAllFactoriesBuild(t *testing.T) {
	srv := NewServer(1)
	for _, name := range StrategyNames() {
		f, err := StrategyFactory(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s := f(0, 3, srv); s == nil {
			t.Fatalf("%s: nil syncer", name)
		}
	}
}
