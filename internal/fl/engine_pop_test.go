package fl

import (
	"context"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/nn"
)

func popEngine(t *testing.T, mut func(*Config)) *Engine {
	t.Helper()
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 512, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	cfg := Config{
		NumClients:     16,
		LocalIters:     3,
		BatchSize:      8,
		LR:             0.05,
		WeightDecay:    0.0005,
		DirichletAlpha: 1.0,
		EvalSamples:    64,
		EvalBatch:      64,
		Seed:           3,
		Population:     64,
	}
	if mut != nil {
		mut(&cfg)
	}
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	factory, err := StrategyFactory("fedavg")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, builder, ds, factory)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEnginePopulationTreeBitIdentity: the same population run folded
// through a fanout-8 tree and through the flat server must land on the
// same global parameters, to the bit, round after round — the tree is a
// systems optimization, never a numerics change.
func TestEnginePopulationTreeBitIdentity(t *testing.T) {
	flat := popEngine(t, nil)
	tree := popEngine(t, func(c *Config) { c.Fanout = 8 })

	const rounds = 3
	fs, err := flat.Run(context.Background(), rounds, rounds)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tree.Run(context.Background(), rounds, rounds)
	if err != nil {
		t.Fatal(err)
	}

	fv, tv := flat.GlobalVector(), tree.GlobalVector()
	if !sameBits(fv, tv) {
		t.Fatal("tree global deviates from flat global: the hierarchical fold changed the numerics")
	}

	for r := 0; r < rounds; r++ {
		f, tr := fs[r], ts[r]
		if f.CohortSize != 16 || tr.CohortSize != 16 {
			t.Fatalf("round %d cohort sizes %d/%d, want 16", r, f.CohortSize, tr.CohortSize)
		}
		// 16 members at fanout 8: 2 leaves + root = 2 tiers.
		if tr.Tiers != 2 {
			t.Fatalf("round %d tree tiers = %d, want 2", r, tr.Tiers)
		}
		if tr.LeafFolds != 2 || tr.ForwardedPartials != 2 {
			t.Fatalf("round %d leaf folds/partials = %d/%d, want 2/2", r, tr.LeafFolds, tr.ForwardedPartials)
		}
		// The tree root ingests partials, not the cohort's uploads.
		if tr.RootRxBytes >= f.RootRxBytes {
			t.Fatalf("round %d tree root rx %d !< flat root rx %d", r, tr.RootRxBytes, f.RootRxBytes)
		}
		if f.Participants <= 0 || f.Duration <= 0 {
			t.Fatalf("round %d flat stats missing timing: %+v", r, f)
		}
	}

	// Cohorts rotate: successive rounds must not sample the same members.
	c0 := flat.Population().SampleCohort(0, 16)
	c1 := flat.Population().SampleCohort(1, 16)
	same := true
	for i := range c0 {
		if c0[i] != c1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rounds 0 and 1 sampled identical cohorts")
	}
}

// TestEnginePopulationValidation: population-mode misconfigurations fail
// construction loudly, and fleet mutations are rejected at runtime.
func TestEnginePopulationValidation(t *testing.T) {
	fails := func(name string, mut func(*Config)) {
		t.Helper()
		ds := data.Synthesize(data.SynthConfig{
			Name: "tiny", Channels: 1, Size: 8, Classes: 4,
			Samples: 256, Noise: 0.2, Jitter: 1, Seed: 11,
		})
		cfg := Config{
			NumClients: 4, LocalIters: 1, BatchSize: 4, LR: 0.05,
			DirichletAlpha: 1.0, Seed: 3,
		}
		mut(&cfg)
		builder := func() *nn.Model {
			return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 8)
		}
		factory, err := StrategyFactory("fedavg")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewEngine(cfg, builder, ds, factory); err == nil {
			t.Errorf("%s: constructed without error", name)
		}
	}
	fails("cohort without population", func(c *Config) { c.Cohort = 4 })
	fails("fanout without population", func(c *Config) { c.Fanout = 4 })
	fails("cohort != slots", func(c *Config) { c.Population = 32; c.Cohort = 8 })
	fails("population below cohort", func(c *Config) { c.Population = 2 })
	fails("fanout of 1", func(c *Config) { c.Population = 32; c.Fanout = 1 })
	fails("async population", func(c *Config) { c.Population = 32; c.Async = AsyncConfig{K: 2} })

	e := popEngine(t, nil)
	if _, err := e.AddClientFromDataset(8, 1); err == nil {
		t.Error("AddClient accepted in population mode")
	}
	if err := e.RemoveClient(0); err == nil {
		t.Error("RemoveClient accepted in population mode")
	}
}
