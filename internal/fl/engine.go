package fl

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"fedsu/internal/data"
	"fedsu/internal/netem"
	"fedsu/internal/nn"
	"fedsu/internal/opt"
	"fedsu/internal/par"
	"fedsu/internal/sparse"
	"fedsu/internal/sparse/codec"
	"fedsu/internal/tensor"
)

// Config assembles an emulated federated training run.
type Config struct {
	// NumClients is the client count (128 in the paper's testbed).
	NumClients int
	// LocalIters is F_s, the SGD iterations per round (50 in the paper).
	LocalIters int
	// BatchSize is the mini-batch size (32 in the paper).
	BatchSize int
	// LR, Momentum, WeightDecay configure the client optimizer.
	LR, Momentum, WeightDecay float64
	// ProxMu adds a FedProx proximal term μ/2·‖x − x_round‖² to each
	// client's local objective; zero (the paper's setup) disables it.
	ProxMu float64
	// LRDecayWarm, when positive, applies the 1/√(1+step/warm) learning
	// rate schedule that satisfies Theorem 1's convergence conditions
	// (Eq. 13); zero keeps the paper's constant rate.
	LRDecayWarm int
	// DirichletAlpha controls non-IID label skew (1.0 in the paper).
	DirichletAlpha float64
	// EvalSamples is the held-out evaluation set size.
	EvalSamples int
	// EvalBatch is the evaluation batch size.
	EvalBatch int
	// Seed drives data partitioning and client mini-batch sampling.
	Seed int64
	// Netem configures the cluster timing model; zero value means
	// netem.DefaultConfig(NumClients).
	Netem netem.Config
	// Compute calibrates local-training time; zero value means
	// netem.DefaultComputeModel.
	Compute netem.ComputeModel
	// WireParams overrides the parameter count used for byte and compute
	// accounting, letting scaled-down models report paper-scale traffic.
	// Zero means the actual model size.
	WireParams int
	// CollectiveDeadline bounds each aggregation barrier: a client that
	// fails to submit within the deadline of the first submission is
	// evicted and the round completes over the survivors. Zero (the
	// default, and the emulation's normal setting — in-process clients
	// cannot die) keeps blocking barriers.
	CollectiveDeadline time.Duration
	// Async switches the run to buffered-async rounds (Async.K >= 1):
	// clients become independent arrival processes and the server applies
	// a staleness-weighted global every K contributions. The zero value
	// keeps synchronous barrier rounds. Async mode requires a full-vector
	// strategy (fedavg, cmfl, qsgd); subset-submitting strategies (fedsu,
	// apf) are rejected at construction because their per-client masks
	// cannot fold into one shared accumulator.
	Async AsyncConfig
	// EventThreshold enables event-triggered participation: a client
	// offers an upload only when the L2 norm of its accumulated change
	// since its last offer crosses the threshold, abstaining with
	// header-only traffic otherwise. Zero disables gating. Composes with
	// every strategy and with both sync and async rounds.
	EventThreshold float64
	// Population enables population-scale cohort rounds: Population
	// registered descriptors form the device registry (10^5–10^6 in
	// cross-device deployments), and each round trains the cohort drawn by
	// Population.SampleCohort(round, Cohort) — deterministic given (Seed,
	// round), so runs reproduce and checkpoints resume without storing any
	// sampling state. The engine's NumClients model replicas act as slots:
	// slot i plays cohort member cohort[i] for the round (cross-device
	// clients are stateless between selections, so a slot's replica — which
	// holds the global model after every sync — is exactly the state a
	// freshly selected device would download). Zero keeps classic
	// fixed-fleet rounds. Population mode is synchronous-only and the
	// fleet is fixed-size (AddClient/RemoveClient are rejected).
	Population int
	// Cohort is the per-round sampled cohort size in population mode; zero
	// defaults to NumClients, any other value must equal NumClients (one
	// slot per sampled member).
	Cohort int
	// Fanout >= 2 aggregates population-mode rounds through a hierarchical
	// fl.Tree instead of the flat server: leaves fold cohort blocks and
	// forward one partial upward, so root work is O(fanout) rather than
	// O(cohort). The global is bit-identical to the flat fold at any
	// fanout. Zero keeps the flat collective.
	Fanout int
	// PopNetem configures the population-scale timing model; the zero
	// value means netem.DefaultPopulationConfig(Population, fanout).
	PopNetem netem.PopulationConfig
	// Compress selects the wire compression chain for collective payloads,
	// as a codec chain spec ("topk,q4,rans" — see codec.Parse). Every
	// member upload and global download passes through the chain: in
	// process the aggregator applies the chain's encode→decode image, over
	// TCP the transport ships the actual encoding, and the two runs stay
	// bit-identical. Strategy traffic is charged at the chain's measured
	// message sizes. Empty keeps the default wire (the historical
	// bitmap/index codec), byte-identical to every pre-chain run. Tree
	// partials are unaffected — chains compress the member-upload boundary,
	// not the raw float64 partial cascade.
	Compress string
	// DType declares the compute precision the model builder was configured
	// for. The engine derives the actual precision from the built replicas
	// (batches, evaluation, and the optimizer all follow the model's
	// storage width automatically); a non-zero DType here is a cross-check
	// that fails engine construction loudly when the builder disagrees,
	// instead of silently training at the wrong width. The zero value
	// (tensor.Float64) accepts the historical default.
	DType tensor.DType
}

// DefaultConfig returns the paper's training hyper-parameters at a reduced
// client count suitable for in-process emulation.
func DefaultConfig(numClients int) Config {
	return Config{
		NumClients:     numClients,
		LocalIters:     50,
		BatchSize:      32,
		LR:             0.01,
		WeightDecay:    0.001,
		DirichletAlpha: 1.0,
		EvalSamples:    512,
		EvalBatch:      64,
		Seed:           1,
	}
}

// RoundStats reports one round of an emulated run.
type RoundStats struct {
	// Round is the zero-based round index.
	Round int
	// Duration is the emulated wall-clock span of this round (seconds).
	Duration float64
	// SimTime is the cumulative emulated time at round end.
	SimTime float64
	// Accuracy and Loss are the global model's held-out metrics (NaN if
	// evaluation was skipped this round).
	Accuracy, Loss float64
	// TrainLoss is the mean local training loss across clients.
	TrainLoss float64
	// Traffic aggregates all clients' communication this round.
	Traffic sparse.Traffic
	// SparsificationRatio is the byte-level savings versus full exchange.
	SparsificationRatio float64
	// PredictableFraction is the fraction of parameters in speculative
	// mode (FedSU strategies; zero otherwise).
	PredictableFraction float64
	// Participants is the quorum size used for aggregation.
	Participants int
	// Evicted is the number of clients evicted from the roster this round
	// after missing a collective deadline (zero without a deadline).
	Evicted int
	// Timeouts is the number of collectives this round that were closed by
	// deadline expiry instead of filling naturally.
	Timeouts int
	// StaleDrops is the number of contributions discarded for exceeding
	// AsyncConfig.MaxStaleness during this async version window (zero in
	// synchronous mode).
	StaleDrops int
	// CohortSize is the sampled cohort size (population mode; zero in
	// classic fixed-fleet rounds).
	CohortSize int
	// Tiers is the aggregation-tree depth used this round (1 for the flat
	// collective; zero outside population mode).
	Tiers int
	// LeafFolds and ForwardedPartials count this round's leaf fold batches
	// and upward partial messages (tree collective only).
	LeafFolds int
	// ForwardedPartials counts partial-sum messages sent up the tree this
	// round.
	ForwardedPartials int
	// TierEvictions[i] is this round's eviction count at tier i (0 =
	// leaves); nil when no tier evicted anyone.
	TierEvictions []int
	// RootRxBytes is the modeled payload the root aggregator ingested this
	// round: one partial per root-tier child under a tree, the full cohort
	// upload when flat.
	RootRxBytes int
}

// Engine drives an emulated federated run.
type Engine struct {
	cfg      Config
	clients  []*Client
	server   *Server
	cluster  *netem.Cluster
	compute  netem.ComputeModel
	strategy string

	// Population mode (cfg.Population > 0): the device registry, the
	// population-scale timing model, the optional tree collective, and one
	// slot proxy per client rebinding its collective identity each round.
	pop      *Population
	popModel *netem.PopulationModel
	tree     *Tree
	proxies  []*slotProxy

	// chain is the parsed Compress spec (nil for the default wire); it is
	// applied to every slot's aggregator and bound into strategy accounting.
	chain *codec.Chain

	evalModel *nn.Model
	evalX     []evalBatch
	dataset   *data.Dataset

	simTime   float64
	round     int
	prevLoads []netem.ClientLoad

	builder nn.Builder
	factory sparse.Factory
	nextID  int
}

type evalBatch struct {
	x      *tensor.Tensor
	labels []int
}

// NewEngine wires a complete emulated run: it partitions the dataset with
// Dirichlet skew, builds one model replica + optimizer + strategy instance
// per client, and prepares the netem cluster and evaluation set.
func NewEngine(cfg Config, builder nn.Builder, ds *data.Dataset, factory sparse.Factory) (*Engine, error) {
	return NewEngineWithShards(cfg, builder, ds, nil, factory)
}

// NewEngineWithShards is NewEngine with the client partition supplied by the
// caller; nil shards fall back to partitioning internally. Experiment grids
// that run the same (dataset, NumClients, DirichletAlpha, Seed) cell under
// several schemes pass a memoized partition so the Dirichlet split is
// computed once and shared. Shards are read-shared across engines and
// concurrently by client goroutines within an engine, which is safe because
// Subset is immutable after construction (see internal/data); the supplied
// partition must have been built with the same parameters NewEngine would
// use, or the run will not reproduce the unshared path.
func NewEngineWithShards(cfg Config, builder nn.Builder, ds *data.Dataset, shards []*data.Subset, factory sparse.Factory) (*Engine, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("fl: NumClients = %d", cfg.NumClients)
	}
	if cfg.LocalIters <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("fl: LocalIters/BatchSize must be positive, got %d/%d", cfg.LocalIters, cfg.BatchSize)
	}
	if cfg.Netem.NumClients == 0 {
		cfg.Netem = netem.DefaultConfig(cfg.NumClients)
	}
	if cfg.Netem.NumClients != cfg.NumClients {
		return nil, fmt.Errorf("fl: netem clients %d != engine clients %d", cfg.Netem.NumClients, cfg.NumClients)
	}
	if cfg.Compute == (netem.ComputeModel{}) {
		cfg.Compute = netem.DefaultComputeModel()
	}
	cluster, err := netem.NewCluster(cfg.Netem)
	if err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}

	probe := builder()
	if probe.DType() != cfg.DType {
		return nil, fmt.Errorf("fl: config DType %v but builder produces %v models", cfg.DType, probe.DType())
	}
	var chain *codec.Chain
	if cfg.Compress != "" {
		if cfg.DType == tensor.Float32 {
			// The float32 compute path relies on the wire being lossless for
			// f32-representable values; chain stages (quantization grids,
			// factor reconstructions) produce values outside that set.
			return nil, fmt.Errorf("fl: Compress %q is unsupported with Float32 models: chain wire images are not float32-exact", cfg.Compress)
		}
		chain, err = codec.Parse(cfg.Compress, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fl: %w", err)
		}
		if chain.IsDefault() {
			chain = nil // the explicit default spec is the legacy wire
		}
	}
	server := NewServer(cfg.NumClients)
	if cfg.CollectiveDeadline > 0 {
		server.SetDeadline(cfg.CollectiveDeadline)
	}
	if cfg.Async.Enabled() {
		if err := server.SetAsync(cfg.Async); err != nil {
			return nil, err
		}
	}
	if cfg.EventThreshold < 0 {
		return nil, fmt.Errorf("fl: EventThreshold = %v must be >= 0", cfg.EventThreshold)
	}
	if shards == nil {
		shards = data.PartitionDirichlet(ds, cfg.NumClients, cfg.DirichletAlpha, cfg.Seed)
	} else if len(shards) != cfg.NumClients {
		return nil, fmt.Errorf("fl: %d shards for %d clients", len(shards), cfg.NumClients)
	}

	e := &Engine{
		cfg:       cfg,
		server:    server,
		cluster:   cluster,
		compute:   cfg.Compute,
		evalModel: probe,
		dataset:   ds,
		builder:   builder,
		factory:   factory,
		nextID:    cfg.NumClients,
		chain:     chain,
	}
	if err := e.setupPopulation(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumClients; i++ {
		model := builder()
		optOpts := []opt.SGDOpt{
			opt.WithMomentum(cfg.Momentum),
			opt.WithWeightDecay(cfg.WeightDecay),
		}
		if cfg.LRDecayWarm > 0 {
			optOpts = append(optOpts, opt.WithSchedule(opt.InverseSqrt(cfg.LRDecayWarm)))
		}
		optimizer := opt.NewSGD(cfg.LR, optOpts...)
		syncer := factory(i, model.Size(), e.slotCollective())
		sparse.SetSyncerWire(syncer, e.wire())
		if cfg.Async.Enabled() {
			switch sparse.UnwrapSyncer(syncer).Name() {
			case "fedavg", "cmfl", "qsgd":
			default:
				return nil, fmt.Errorf("fl: async mode requires a full-vector strategy (fedavg/cmfl/qsgd), got %q: subset submissions cannot fold into the shared async accumulator", sparse.UnwrapSyncer(syncer).Name())
			}
		}
		if cfg.EventThreshold > 0 {
			syncer = sparse.NewEventTrigger(syncer, cfg.EventThreshold)
		}
		c := NewClient(i, model, optimizer, shards[i], syncer, cfg.Seed+int64(i)*7919)
		c.SetProximal(cfg.ProxMu)
		e.clients = append(e.clients, c)
	}
	e.strategy = e.clients[0].syncer.Name()
	e.buildEvalSet()
	return e, nil
}

// Strategy returns the active strategy name.
func (e *Engine) Strategy() string { return e.strategy }

// Clients exposes the client list (read-only).
func (e *Engine) Clients() []*Client { return e.clients }

// SimTime returns the cumulative emulated seconds.
func (e *Engine) SimTime() float64 { return e.simTime }

// buildEvalSet reserves a deterministic evaluation sample from the dataset.
func (e *Engine) buildEvalSet() {
	n := e.cfg.EvalSamples
	if n <= 0 || n > e.dataset.Len() {
		n = e.dataset.Len()
	}
	bs := e.cfg.EvalBatch
	if bs <= 0 {
		bs = 64
	}
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, labels := e.dataset.BatchOf(e.evalModel.DType(), idx)
		e.evalX = append(e.evalX, evalBatch{x: x, labels: labels})
	}
}

// wireParams returns the scalar count used for traffic and compute
// accounting.
func (e *Engine) wireParams() int {
	if e.cfg.WireParams > 0 {
		return e.cfg.WireParams
	}
	return e.evalModel.Size()
}

// wire is the engine's negotiated wire: the parsed Compress chain, or the
// legacy default codec when none was configured.
func (e *Engine) wire() sparse.Wire { return sparse.Wire{Chain: e.chain} }

// Chain exposes the negotiated compression chain (nil for the default
// wire) so drivers can report its per-stage byte counters.
func (e *Engine) Chain() *codec.Chain { return e.chain }

// RunRound executes one full round: timing-model participant selection,
// concurrent local training and synchronization, and evaluation.
func (e *Engine) RunRound(ctx context.Context, evaluate bool) (RoundStats, error) {
	// Bail before spawning any training goroutines: a cancelled context must
	// not burn a full round of local SGD first.
	if err := ctx.Err(); err != nil {
		return RoundStats{}, err
	}
	if e.cfg.Async.Enabled() {
		return RoundStats{}, fmt.Errorf("fl: RunRound is the synchronous-barrier driver; async mode runs through Run (event loop)")
	}
	if e.pop != nil {
		return e.runPopRound(ctx, evaluate)
	}
	// Dynamic departures (RemoveClient) can drain the roster entirely; every
	// aggregate below divides by the client count and probes clients[0].
	if len(e.clients) == 0 {
		return RoundStats{}, fmt.Errorf("fl: round %d: engine has no clients (all departed?)", e.round)
	}
	k := e.round

	// Timing: per-client loads use the previous round's actual payload
	// bytes (full model on the first round) scaled to wire-parameter size.
	scale := float64(e.wireParams()) / float64(e.evalModel.Size())
	computeSec := e.compute.RoundCompute(e.wireParams(), e.cfg.LocalIters)
	loads := e.prevLoads
	if loads == nil {
		full := int(float64(e.wire().DenseBytes(e.evalModel.Size())) * scale)
		loads = e.cluster.UniformLoad(full, full, computeSec)
	}
	outcome := e.cluster.Round(loads)
	// outcome.Participants are positional cluster slots; translate to the
	// stable client ids the server keys on (they differ once clients have
	// joined or left).
	isParticipant := make([]bool, len(e.clients))
	participantIDs := make([]int, 0, len(outcome.Participants))
	for _, slot := range outcome.Participants {
		isParticipant[slot] = true
		participantIDs = append(participantIDs, e.clients[slot].ID)
	}
	// The roster (who must reach every barrier) is the full client set by
	// stable id — distinct from the participation quorum, and necessary
	// once dynamic join/leave makes ids diverge from {0..n-1}.
	roster := make([]int, len(e.clients))
	for i, c := range e.clients {
		roster[i] = c.ID
	}
	e.server.SetRoster(roster)
	e.server.BeginRound(k, participantIDs)
	evictionsBefore, timeoutsBefore := e.server.EvictionCount(), e.server.TimeoutCount()

	// Concurrent local training + synchronization.
	type result struct {
		loss    float64
		traffic sparse.Traffic
		err     error
	}
	// At most par.TokenCap() clients run local SGD at once — across ALL
	// engines in the process, not just this one: each client's training
	// already saturates the compute kernels, so oversubscribing goroutines
	// beyond the worker pool only adds scheduler churn and peak memory
	// (every in-flight client holds its model's activations). The budget is
	// process-global so an experiment grid running several engines
	// concurrently (internal/exp's scheduler) still trains at most
	// par.Workers() clients at once. The token is released BEFORE
	// SyncRound — the server's collectives barrier until every client
	// submits, so holding a compute token across the barrier would deadlock
	// whenever clients outnumber tokens.
	results := make([]result, len(e.clients))
	var wg sync.WaitGroup
	for i := range e.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := e.clients[i]
			par.AcquireToken()
			loss := c.TrainLocal(e.cfg.LocalIters, e.cfg.BatchSize)
			par.ReleaseToken()
			tr, err := c.SyncRoundCtx(ctx, k, isParticipant[i])
			results[i] = result{loss: loss, traffic: tr, err: err}
		}(i)
	}
	wg.Wait()

	stats := RoundStats{Round: k, Participants: len(outcome.Participants)}
	var trafficTotal sparse.Traffic
	ratioSum := 0.0
	nextLoads := make([]netem.ClientLoad, len(e.clients))
	for i, r := range results {
		if r.err != nil {
			return RoundStats{}, fmt.Errorf("fl: round %d: %w", k, r.err)
		}
		stats.TrainLoss += r.loss
		trafficTotal.Add(r.traffic)
		ratioSum += r.traffic.SparsificationRatio()
		nextLoads[i] = netem.ClientLoad{
			DownBytes:      int(float64(r.traffic.DownBytes) * scale),
			UpBytes:        int(float64(r.traffic.UpBytes) * scale),
			ComputeSeconds: computeSec,
		}
	}
	e.prevLoads = nextLoads
	stats.TrainLoss /= float64(len(e.clients))
	stats.Traffic = trafficTotal
	stats.SparsificationRatio = ratioSum / float64(len(e.clients))
	if pc, ok := sparse.UnwrapSyncer(e.clients[0].syncer).(interface{ PredictableCount() int }); ok {
		stats.PredictableFraction = float64(pc.PredictableCount()) / float64(e.evalModel.Size())
	}

	stats.Duration = outcome.Duration
	e.simTime += outcome.Duration
	stats.SimTime = e.simTime
	stats.Evicted = e.server.EvictionCount() - evictionsBefore
	stats.Timeouts = e.server.TimeoutCount() - timeoutsBefore

	if err := ctx.Err(); err != nil {
		// Cancelled after every client already synchronized: the round is
		// complete server-side, so finish the bookkeeping (round counter,
		// prevLoads, simTime are all updated above) and only skip
		// evaluation. Returning without advancing e.round here would leave
		// checkpoint-resume replaying a round the fleet already applied.
		stats.Accuracy, stats.Loss = -1, -1
		e.round++
		return stats, err
	}

	if evaluate {
		acc, loss := e.EvaluateGlobal()
		stats.Accuracy, stats.Loss = acc, loss
	} else {
		stats.Accuracy, stats.Loss = -1, -1
	}
	e.round++
	return stats, nil
}

// Run executes rounds sequentially, evaluating every evalEvery rounds (and
// on the final round), and returns all round statistics.
func (e *Engine) Run(ctx context.Context, rounds, evalEvery int) ([]RoundStats, error) {
	if evalEvery <= 0 {
		evalEvery = 1
	}
	if e.cfg.Async.Enabled() {
		// Async mode: `rounds` counts global applications (versions), the
		// async analogue of a round.
		return e.runAsync(ctx, rounds, evalEvery)
	}
	var out []RoundStats
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		evaluate := (i+1)%evalEvery == 0 || i == rounds-1
		st, err := e.RunRound(ctx, evaluate)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// EvaluateGlobal loads the current global model (client 0's post-sync
// replica — identical across clients) into the evaluation replica and
// scores it on the held-out set. With an empty roster there is no global
// model to read; both metrics come back NaN.
func (e *Engine) EvaluateGlobal() (acc, loss float64) {
	if len(e.clients) == 0 {
		nan := math.NaN()
		return nan, nan
	}
	return e.evaluateVector(e.clients[0].model.Vector())
}

// evaluateVector scores an arbitrary parameter vector on the held-out set.
func (e *Engine) evaluateVector(vec []float64) (acc, loss float64) {
	e.evalModel.LoadVector(vec)
	var accSum, lossSum float64
	n := 0
	for _, b := range e.evalX {
		a, l := e.evalModel.Evaluate(b.x, b.labels)
		w := len(b.labels)
		accSum += a * float64(w)
		lossSum += l * float64(w)
		n += w
	}
	return accSum / float64(n), lossSum / float64(n)
}

// GlobalVector returns a copy of the current global parameter vector, or
// nil when every client has departed.
func (e *Engine) GlobalVector() []float64 {
	if len(e.clients) == 0 {
		return nil
	}
	return e.clients[0].model.Vector()
}
