package fl

import (
	"fmt"

	"fedsu/internal/ckpt"
	"fedsu/internal/core"
	"fedsu/internal/sparse"
)

// Checkpoint captures the engine's resumable state: the global model, the
// round counter, and the FedSU manager state when the active strategy is
// FedSU. Optimizer momentum is not captured; the paper's setup trains with
// plain SGD + weight decay, which is stateless across rounds.
func (e *Engine) Checkpoint() *ckpt.Checkpoint {
	c := &ckpt.Checkpoint{
		Scheme: e.strategy,
		Round:  e.round,
		Model:  e.clients[0].model.Vector(),
	}
	if mgr, ok := sparse.UnwrapSyncer(e.clients[0].syncer).(*core.Manager); ok {
		c.Manager = mgr.Snapshot()
	}
	return c
}

// Restore rewinds the engine to a checkpoint: every client loads the model
// vector, FedSU managers restore their mask state, and the round counter
// resumes. The client set and model layout must match the checkpoint.
func (e *Engine) Restore(c *ckpt.Checkpoint) error {
	if len(c.Model) != e.clients[0].model.Size() {
		return fmt.Errorf("fl: checkpoint model size %d, engine model size %d",
			len(c.Model), e.clients[0].model.Size())
	}
	if c.Scheme != "" && c.Scheme != e.strategy {
		return fmt.Errorf("fl: checkpoint scheme %q, engine scheme %q", c.Scheme, e.strategy)
	}
	for _, cl := range e.clients {
		cl.model.LoadVector(c.Model)
		if c.Manager != nil {
			mgr, ok := sparse.UnwrapSyncer(cl.syncer).(*core.Manager)
			if !ok {
				return fmt.Errorf("fl: checkpoint carries FedSU state but client %d runs %s",
					cl.ID, cl.syncer.Name())
			}
			if err := mgr.Restore(c.Manager); err != nil {
				return fmt.Errorf("fl: client %d: %w", cl.ID, err)
			}
		}
	}
	e.round = c.Round
	e.prevLoads = nil
	return nil
}
