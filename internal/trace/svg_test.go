package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	a := NewSeries("fedsu", "time", "acc")
	b := NewSeries("fedavg", "time", "acc")
	for i := 0; i < 10; i++ {
		a.Add(float64(i), float64(i)*0.1)
		b.Add(float64(i), float64(i)*0.05)
	}
	var buf bytes.Buffer
	err := WriteSVG(&buf, SVGOptions{Title: "Fig <5>", XLabel: "time (s)", YLabel: "accuracy"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "fedsu", "fedavg", "Fig &lt;5&gt;", "accuracy", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestWriteSVGEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, SVGOptions{}, NewSeries("x", "a", "b")); err == nil {
		t.Error("empty series must fail")
	}
}

func TestWriteSVGConstantSeries(t *testing.T) {
	s := NewSeries("flat", "x", "y")
	s.Add(0, 1)
	s.Add(5, 1)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, SVGOptions{}, s); err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
}

func TestFmtTick(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{12345, "1.2e+04"},
		{42, "42"},
		{0.5, "0.5"},
		{0.001, "1.0e-03"},
		{0, "0"},
	}
	for _, tt := range tests {
		if got := fmtTick(tt.v); got != tt.want {
			t.Errorf("fmtTick(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
