package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Counters is a concurrency-safe set of named monotonic counters, used to
// surface operational events (retries, reconnects, evictions, barrier
// timeouts) from the fault-tolerant collectives into experiment reports.
// All methods are safe on a nil *Counters: reads return zero and writes
// are dropped, so instrumented code paths need no nil checks.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters constructs an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: map[string]int64{}}
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (zero when never incremented).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the counter names in ascending order.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return map[string]int64{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters as "name=value" pairs in name order, e.g.
// "evictions=1 retries=3" — empty for an empty (or nil) set.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := c.Names()
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, snap[n]))
	}
	return strings.Join(parts, " ")
}

// Render writes the counters as an aligned table with the given title.
func (c *Counters) Render(w io.Writer, title string) error {
	t := NewTable(title, "counter", "value")
	snap := c.Snapshot()
	for _, n := range c.Names() {
		t.AddRow(n, snap[n])
	}
	return t.Render(w)
}

// WriteCSV emits the counters as two-column CSV in name order.
func (c *Counters) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "counter,value"); err != nil {
		return err
	}
	snap := c.Snapshot()
	for _, n := range c.Names() {
		if _, err := fmt.Fprintf(w, "%s,%d\n", n, snap[n]); err != nil {
			return err
		}
	}
	return nil
}
