// Package trace provides the experiment recording and reporting machinery:
// named time series, tables rendered in the paper's row format, CSV export,
// and minimal ASCII plots for terminal inspection of the figure shapes.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a named sequence of (x, y) points, e.g. time-to-accuracy or a
// per-round sparsification ratio.
type Series struct {
	// Name labels the series ("fedsu", "apf", ...).
	Name string
	// XLabel and YLabel document the axes for CSV headers.
	XLabel, YLabel string

	X, Y []float64
}

// NewSeries constructs an empty series.
func NewSeries(name, xLabel, yLabel string) *Series {
	return &Series{Name: name, XLabel: xLabel, YLabel: yLabel}
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// LastY returns the final y value (NaN when empty).
func (s *Series) LastY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// MaxY returns the maximum y value (NaN when empty).
func (s *Series) MaxY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	m := math.Inf(-1)
	for _, v := range s.Y {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanY returns the mean y value (NaN when empty).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// FirstXWhereY returns the smallest x whose y meets pred, or NaN if none
// does — e.g. time-to-target-accuracy.
func (s *Series) FirstXWhereY(pred func(y float64) bool) float64 {
	for i, y := range s.Y {
		if pred(y) {
			return s.X[i]
		}
	}
	return math.NaN()
}

// WriteCSV emits the series as two-column CSV.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", s.XLabel, s.YLabel); err != nil {
		return err
	}
	for i := range s.X {
		if _, err := fmt.Fprintf(w, "%g,%g\n", s.X[i], s.Y[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVMulti writes several series sharing an x axis as one CSV: the
// union of x values with one y column per series (empty cells where a
// series lacks the x).
func WriteCSVMulti(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	cols := make([]string, 0, len(series)+1)
	cols = append(cols, series[0].XLabel)
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf("%g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table is a simple aligned-text table for paper-style result rows.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable constructs a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.headers, ",")); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// AsciiPlot renders series as a crude terminal plot (rows top-to-bottom =
// descending y) so figure shapes are inspectable without a plotting stack.
func AsciiPlot(w io.Writer, width, height int, series ...*Series) error {
	if width < 8 || height < 4 {
		return fmt.Errorf("trace: plot size %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("trace: no points to plot")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+o#@%&="
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: [%.4g, %.4g]  x: [%.4g, %.4g]\n", minY, maxY, minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	for _, row := range grid {
		b.Write(row)
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
