package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	c.Inc("retries")
	c.Inc("retries")
	c.Add("evictions", 3)
	if got := c.Get("retries"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := c.Get("evictions"); got != 3 {
		t.Errorf("evictions = %d, want 3", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "evictions" || names[1] != "retries" {
		t.Errorf("Names() = %v, want [evictions retries]", names)
	}
	if got, want := c.String(), "evictions=3 retries=2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	snap := c.Snapshot()
	c.Inc("retries")
	if snap["retries"] != 2 {
		t.Error("Snapshot must be a copy, not a view")
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Inc("x") // must not panic
	c.Add("x", 5)
	if got := c.Get("x"); got != 0 {
		t.Errorf("nil Get = %d, want 0", got)
	}
	if names := c.Names(); len(names) != 0 {
		t.Errorf("nil Names = %v, want empty", names)
	}
	if s := c.String(); s != "" {
		t.Errorf("nil String = %q, want empty", s)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Errorf("nil Snapshot = %v, want empty", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}

func TestCountersCSVAndRender(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	var csv strings.Builder
	if err := c.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got, want := csv.String(), "counter,value\na,1\nb,2\n"; got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	var tbl strings.Builder
	if err := c.Render(&tbl, "ops"); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"ops", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}
