package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVGOptions configures WriteSVG.
type SVGOptions struct {
	// Title is drawn across the top.
	Title string
	// Width and Height are the canvas size in pixels (defaults 640×400).
	Width, Height int
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

// svgPalette holds distinguishable line colors.
var svgPalette = []string{
	"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
	"#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
}

// WriteSVG renders the series as a line chart in standalone SVG. It exists
// so the benchmark harness's figures can be inspected without any plotting
// stack; the output is deliberately simple (linear axes, legend, grid).
func WriteSVG(w io.Writer, opts SVGOptions, series ...*Series) error {
	if opts.Width <= 0 {
		opts.Width = 640
	}
	if opts.Height <= 0 {
		opts.Height = 400
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("trace: no points to render")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	const (
		padL, padR = 64, 16
		padT, padB = 40, 44
	)
	plotW := float64(opts.Width - padL - padR)
	plotH := float64(opts.Height - padT - padB)
	px := func(x float64) float64 { return padL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(opts.Height-padB) - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
			padL, xmlEscape(opts.Title))
	}

	// Grid and axis labels: 5 ticks per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		gx, gy := px(fx), py(fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			gx, padT, gx, opts.Height-padB)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			padL, gy, opts.Width-padR, gy)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx, opts.Height-padB+16, fmtTick(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			padL-6, gy+4, fmtTick(fy))
	}
	// Axis frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#666"/>`+"\n",
		padL, padT, plotW, plotH)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			padL+plotW/2, opts.Height-8, xmlEscape(opts.XLabel))
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.0f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.0f)">%s</text>`+"\n",
			padT+plotH/2, padT+plotH/2, xmlEscape(opts.YLabel))
	}

	// Series polylines + legend.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		lx := padL + 8
		ly := padT + 14 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 10000 || (a < 0.01 && a > 0):
		return fmt.Sprintf("%.1e", v)
	case a >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
