package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestPrefixWriterLineAssembly feeds fragmented and multi-line writes and
// checks every emitted line is whole and prefixed.
func TestPrefixWriterLineAssembly(t *testing.T) {
	var sb strings.Builder
	p := NewPrefixWriter(&sb, "[a] ")
	io.WriteString(p, "hel")
	io.WriteString(p, "lo\nwor")
	io.WriteString(p, "ld\npartial")
	if got, want := sb.String(), "[a] hello\n[a] world\n"; got != want {
		t.Fatalf("emitted %q, want %q", got, want)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := sb.String(), "[a] hello\n[a] world\n[a] partial\n"; got != want {
		t.Fatalf("after flush %q, want %q", got, want)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "partial") != 1 {
		t.Fatal("second Flush re-emitted the buffered line")
	}
}

// TestPrefixWriterConcurrentProducers is the harness scenario: several runs
// logging through their own PrefixWriter into one SyncWriter. Every line in
// the merged output must be exactly one producer's whole line.
func TestPrefixWriterConcurrentProducers(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	locked := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(b)
	})
	trunk := NewSyncWriter(locked)
	const producers, lines = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewPrefixWriter(trunk, fmt.Sprintf("[p%d] ", g))
			for i := 0; i < lines; i++ {
				// Split each line across several writes to provoke tearing.
				fmt.Fprintf(p, "line ")
				fmt.Fprintf(p, "%d-", g)
				fmt.Fprintf(p, "%d\n", i)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	got := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(got) != producers*lines {
		t.Fatalf("%d lines, want %d", len(got), producers*lines)
	}
	sort.Strings(got)
	var want []string
	for g := 0; g < producers; g++ {
		for i := 0; i < lines; i++ {
			want = append(want, fmt.Sprintf("[p%d] line %d-%d", g, g, i))
		}
	}
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: %q, want %q (torn write?)", i, got[i], want[i])
		}
	}
}

// TestSyncWriterNil pins the discard behaviour for an unset sink.
func TestSyncWriterNil(t *testing.T) {
	n, err := NewSyncWriter(nil).Write([]byte("dropped"))
	if n != 7 || err != nil {
		t.Fatalf("Write = (%d, %v), want (7, nil)", n, err)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }
