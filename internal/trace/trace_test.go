package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("acc", "time", "accuracy")
	if !math.IsNaN(s.LastY()) || !math.IsNaN(s.MaxY()) || !math.IsNaN(s.MeanY()) {
		t.Error("empty series must report NaN summaries")
	}
	s.Add(0, 0.1)
	s.Add(10, 0.5)
	s.Add(20, 0.4)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.LastY() != 0.4 {
		t.Errorf("LastY = %v", s.LastY())
	}
	if s.MaxY() != 0.5 {
		t.Errorf("MaxY = %v", s.MaxY())
	}
	if math.Abs(s.MeanY()-1.0/3) > 1e-12 {
		t.Errorf("MeanY = %v", s.MeanY())
	}
}

func TestFirstXWhereY(t *testing.T) {
	s := NewSeries("acc", "t", "a")
	s.Add(1, 0.2)
	s.Add(2, 0.6)
	s.Add(3, 0.7)
	got := s.FirstXWhereY(func(y float64) bool { return y >= 0.6 })
	if got != 2 {
		t.Errorf("FirstXWhereY = %v, want 2", got)
	}
	if !math.IsNaN(s.FirstXWhereY(func(y float64) bool { return y > 1 })) {
		t.Error("unreachable target must return NaN")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := NewSeries("acc", "time", "accuracy")
	s.Add(1, 0.5)
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "time,accuracy\n1,0.5\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVMulti(t *testing.T) {
	a := NewSeries("a", "x", "y")
	a.Add(1, 10)
	a.Add(2, 20)
	b := NewSeries("b", "x", "y")
	b.Add(2, 200)
	var buf bytes.Buffer
	if err := WriteCSVMulti(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10," {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,200" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table I", "Model", "Scheme", "Time")
	tb.AddRow("CNN", "FedSU", 0.53)
	tb.AddRow("CNN", "FedAvg", 0.91)
	var b bytes.Buffer
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Model", "FedSU", "0.53", "FedAvg"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "Model,Scheme,Time\n") {
		t.Errorf("CSV header wrong: %q", csv.String())
	}
}

func TestAsciiPlot(t *testing.T) {
	s := NewSeries("line", "x", "y")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	var b bytes.Buffer
	if err := AsciiPlot(&b, 40, 10, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("plot contains no marks")
	}
	if err := AsciiPlot(&b, 2, 2, s); err == nil {
		t.Error("tiny plot must error")
	}
	if err := AsciiPlot(&b, 40, 10, NewSeries("empty", "x", "y")); err == nil {
		t.Error("empty plot must error")
	}
}

func TestAsciiPlotConstantSeries(t *testing.T) {
	s := NewSeries("flat", "x", "y")
	s.Add(0, 5)
	s.Add(1, 5)
	var b bytes.Buffer
	if err := AsciiPlot(&b, 20, 5, s); err != nil {
		t.Fatalf("constant series should plot: %v", err)
	}
}
