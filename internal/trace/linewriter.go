package trace

import (
	"bytes"
	"io"
	"sync"
)

// SyncWriter serializes Write calls to an underlying writer so that
// concurrent writers cannot interleave bytes within one call. It is the
// shared trunk that per-run PrefixWriter branches write whole lines into.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a writer that discards everything,
// so callers can wire it unconditionally.
func NewSyncWriter(w io.Writer) *SyncWriter { return &SyncWriter{w: w} }

// Write implements io.Writer.
func (s *SyncWriter) Write(p []byte) (int, error) {
	if s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// PrefixWriter is an io.Writer that buffers partial writes into lines and
// emits each complete line — prefix prepended — as a single Write to the
// underlying writer. Pointed at a shared SyncWriter, it makes concurrent
// progress logs legible: every emitted line is whole and tagged with its
// origin, however the producing goroutines interleave.
//
// A PrefixWriter is owned by one producer and is NOT itself safe for
// concurrent Write calls; concurrency safety comes from giving each
// producer its own PrefixWriter over one shared SyncWriter.
type PrefixWriter struct {
	out    io.Writer
	prefix []byte
	buf    bytes.Buffer
}

// NewPrefixWriter builds a line-buffering writer tagging lines with prefix.
func NewPrefixWriter(out io.Writer, prefix string) *PrefixWriter {
	return &PrefixWriter{out: out, prefix: []byte(prefix)}
}

// Write implements io.Writer. Input may contain any mix of partial lines
// and embedded newlines; only complete lines reach the underlying writer.
func (p *PrefixWriter) Write(b []byte) (int, error) {
	total := len(b)
	for {
		nl := bytes.IndexByte(b, '\n')
		if nl < 0 {
			p.buf.Write(b)
			return total, nil
		}
		line := make([]byte, 0, len(p.prefix)+p.buf.Len()+nl+1)
		line = append(line, p.prefix...)
		line = append(line, p.buf.Bytes()...)
		line = append(line, b[:nl+1]...)
		p.buf.Reset()
		if _, err := p.out.Write(line); err != nil {
			return total - len(b[nl+1:]), err
		}
		b = b[nl+1:]
	}
}

// Flush emits any buffered partial line (newline-terminated). Call it when
// the producer finishes so a run's trailing output is not silently dropped.
func (p *PrefixWriter) Flush() error {
	if p.buf.Len() == 0 {
		return nil
	}
	line := make([]byte, 0, len(p.prefix)+p.buf.Len()+1)
	line = append(line, p.prefix...)
	line = append(line, p.buf.Bytes()...)
	line = append(line, '\n')
	p.buf.Reset()
	_, err := p.out.Write(line)
	return err
}
