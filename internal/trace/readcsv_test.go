package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadCSVMultiRoundTrip(t *testing.T) {
	a := NewSeries("alpha", "x", "y")
	a.Add(1, 10)
	a.Add(3, 30)
	b := NewSeries("beta", "x", "y")
	b.Add(1, 100)
	b.Add(2, 200)
	var buf bytes.Buffer
	if err := WriteCSVMulti(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	series, xname, err := ReadCSVMulti(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if xname != "x" || len(series) != 2 {
		t.Fatalf("xname %q series %d", xname, len(series))
	}
	if series[0].Name != "alpha" || series[0].Len() != 2 || series[0].Y[1] != 30 {
		t.Errorf("alpha = %+v", series[0])
	}
	if series[1].Name != "beta" || series[1].Len() != 2 || series[1].Y[0] != 100 {
		t.Errorf("beta = %+v", series[1])
	}
}

// Property: any set of series survives a write/read cycle with every point
// intact (x values unique per series by construction).
func TestReadCSVMultiProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := NewSeries("s", "x", "y")
		for i := 0; i <= int(n%20); i++ {
			s.Add(float64(i), float64(i*i))
		}
		var buf bytes.Buffer
		if err := WriteCSVMulti(&buf, s); err != nil {
			return false
		}
		got, _, err := ReadCSVMulti(&buf)
		if err != nil || len(got) != 1 || got[0].Len() != s.Len() {
			return false
		}
		for i := range s.X {
			if got[0].X[i] != s.X[i] || got[0].Y[i] != s.Y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVMultiErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"onlyx\n1\n",          // single column
		"x,a\nbad,1\n",        // bad x
		"x,a\n1,notanumber\n", // bad y
		"x,a\n1,2,3\n",        // wrong cell count
	}
	for _, c := range cases {
		if _, _, err := ReadCSVMulti(strings.NewReader(c)); err == nil {
			t.Errorf("input %q must fail", c)
		}
	}
}
