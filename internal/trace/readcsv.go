package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSVMulti parses the multi-series layout WriteCSVMulti produces:
// header "x,name1,name2,...", rows with empty cells where a series lacks a
// point. It returns the series and the x-axis name.
func ReadCSVMulti(r io.Reader) ([]*Series, string, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, "", fmt.Errorf("trace: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 2 {
		return nil, "", fmt.Errorf("trace: need at least two columns, got %q", sc.Text())
	}
	series := make([]*Series, len(header)-1)
	for i, name := range header[1:] {
		series[i] = NewSeries(name, header[0], "value")
	}
	line := 1
	for sc.Scan() {
		line++
		cells := strings.Split(sc.Text(), ",")
		if len(cells) != len(header) {
			return nil, "", fmt.Errorf("trace: line %d has %d cells, want %d", line, len(cells), len(header))
		}
		x, err := strconv.ParseFloat(cells[0], 64)
		if err != nil {
			return nil, "", fmt.Errorf("trace: line %d: bad x %q", line, cells[0])
		}
		for i, c := range cells[1:] {
			if c == "" {
				continue
			}
			y, err := strconv.ParseFloat(c, 64)
			if err != nil {
				return nil, "", fmt.Errorf("trace: line %d: bad value %q", line, c)
			}
			series[i].Add(x, y)
		}
	}
	return series, header[0], sc.Err()
}
