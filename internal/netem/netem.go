// Package netem provides the emulated federated-learning cluster timing
// model that stands in for the paper's EC2 testbed (128 c6i.large clients
// throttled to 13.7 Mbps with wondershaper, one c5a.8xlarge server on a
// 10 Gbps link).
//
// The model is analytic: a round's wall-clock duration is computed from the
// bytes each client actually transfers and the configured link capacities,
// plus heterogeneous local compute time. Round completion follows the
// paper's participation rule — the server proceeds once the earliest
// fraction (70 %) of clients has returned.
package netem

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mbps converts megabits per second to bytes per second.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

// Config describes the emulated cluster.
type Config struct {
	// NumClients is the number of FL client devices.
	NumClients int
	// ClientUplinkMbps and ClientDownlinkMbps are each client's access-link
	// capacities; the paper sets both to 13.7 Mbps following FedScale.
	ClientUplinkMbps   float64
	ClientDownlinkMbps float64
	// ServerBandwidthMbps is the server's aggregate link capacity
	// (10 Gbps in the paper).
	ServerBandwidthMbps float64
	// LatencySeconds is the per-transfer one-way propagation delay.
	LatencySeconds float64
	// Participation is the fraction of earliest-returning clients the
	// server waits for before closing a round (0.7 in the paper).
	Participation float64
	// ComputeHeterogeneity is the relative spread of per-client compute
	// speed (0.3 means speeds uniform in [0.7, 1.3] of nominal).
	ComputeHeterogeneity float64
	// BandwidthSigma is the standard deviation of a per-client lognormal
	// multiplier on the access-link bandwidth, modelling the device
	// diversity FedScale reports (0 = homogeneous links, the paper's
	// wondershaper setup).
	BandwidthSigma float64
	// RoundJitter is the per-round multiplicative compute noise.
	RoundJitter float64
	// DropoutProb is the per-round probability that a client fails to
	// return at all (crash, network partition, battery death). Dropped
	// clients are excluded from the round's quorum regardless of speed;
	// they rejoin automatically next round, matching transient mobile
	// failures.
	DropoutProb float64
	// Seed drives the deterministic heterogeneity and jitter draws.
	Seed int64
}

// DefaultConfig returns the paper's testbed parameters.
func DefaultConfig(numClients int) Config {
	return Config{
		NumClients:           numClients,
		ClientUplinkMbps:     13.7,
		ClientDownlinkMbps:   13.7,
		ServerBandwidthMbps:  10_000,
		LatencySeconds:       0.02,
		Participation:        0.7,
		ComputeHeterogeneity: 0.2,
		RoundJitter:          0.05,
		Seed:                 1,
	}
}

// Cluster is an instantiated timing model.
type Cluster struct {
	cfg    Config
	speeds []float64 // per-client compute-speed multiplier (1 = nominal)
	bwMult []float64 // per-client bandwidth multiplier (1 = nominal)
	rng    *rand.Rand
}

// NewCluster builds a cluster from the config, drawing each client's
// compute-speed multiplier deterministically from the seed.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("netem: NumClients = %d", cfg.NumClients)
	}
	if cfg.Participation <= 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("netem: Participation = %v outside (0, 1]", cfg.Participation)
	}
	if cfg.ClientUplinkMbps <= 0 || cfg.ClientDownlinkMbps <= 0 || cfg.ServerBandwidthMbps <= 0 {
		return nil, fmt.Errorf("netem: non-positive bandwidth in %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	speeds := make([]float64, cfg.NumClients)
	bwMult := make([]float64, cfg.NumClients)
	for i := range speeds {
		speeds[i] = 1 + cfg.ComputeHeterogeneity*(2*rng.Float64()-1)
		bwMult[i] = 1.0
		if cfg.BandwidthSigma > 0 {
			// Lognormal with median 1: exp(sigma*N(0,1)).
			bwMult[i] = math.Exp(cfg.BandwidthSigma * rng.NormFloat64())
		}
	}
	return &Cluster{cfg: cfg, speeds: speeds, bwMult: bwMult, rng: rng}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// ClientLoad describes one client's activity during a round.
type ClientLoad struct {
	// DownBytes and UpBytes are the payload sizes transferred this round.
	DownBytes, UpBytes int
	// ComputeSeconds is the nominal local-training time at unit speed.
	ComputeSeconds float64
}

// RoundOutcome reports the emulated timing of one round.
type RoundOutcome struct {
	// Duration is the wall-clock span until the participation quorum
	// returned.
	Duration float64
	// Participants lists the client ids whose uploads the server accepted
	// (the earliest fraction), in ascending completion-time order.
	Participants []int
	// ClientTimes holds every client's individual completion time.
	ClientTimes []float64
}

// Round evaluates the timing model for one round. loads must have one entry
// per client. Per-client time is
//
//	download + compute/speed·jitter + upload + 2·latency,
//
// where transfer times are bounded by both the client access link and the
// client's fair share of the server link. The round closes when the
// earliest ⌈participation·N⌉ clients have finished.
func (c *Cluster) Round(loads []ClientLoad) RoundOutcome {
	if len(loads) != c.cfg.NumClients {
		panic(fmt.Sprintf("netem: Round got %d loads for %d clients", len(loads), c.cfg.NumClients))
	}
	n := c.cfg.NumClients
	// Fair-share server capacity: concurrent transfers divide the server
	// link. With n simultaneous clients each gets at least serverBW/n.
	serverShare := Mbps(c.cfg.ServerBandwidthMbps) / float64(n)

	times := make([]float64, n)
	order := make([]int, 0, n)
	for i, l := range loads {
		jitter := 1 + c.cfg.RoundJitter*(2*c.rng.Float64()-1)
		down := minf(Mbps(c.cfg.ClientDownlinkMbps)*c.bwMult[i], serverShare)
		up := minf(Mbps(c.cfg.ClientUplinkMbps)*c.bwMult[i], serverShare)
		t := float64(l.DownBytes)/down +
			l.ComputeSeconds/c.speeds[i]*jitter +
			float64(l.UpBytes)/up +
			2*c.cfg.LatencySeconds
		times[i] = t
		if c.cfg.DropoutProb > 0 && c.rng.Float64() < c.cfg.DropoutProb {
			continue // dropped: crash, partition, battery death
		}
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return times[order[a]] < times[order[b]] })

	quorum := quorumSize(n, c.cfg.Participation)
	if quorum > len(order) {
		// Mass dropout: the server settles for whoever survived. An empty
		// round (everyone dropped) keeps the slowest client's time as the
		// wasted-round duration.
		quorum = len(order)
	}
	if quorum == 0 {
		worst := 0.0
		for _, t := range times {
			if t > worst {
				worst = t
			}
		}
		return RoundOutcome{Duration: worst, ClientTimes: times}
	}
	participants := append([]int(nil), order[:quorum]...)
	return RoundOutcome{
		Duration:     times[participants[quorum-1]],
		Participants: participants,
		ClientTimes:  times,
	}
}

// UniformLoad builds identical loads for every client, the common case when
// all clients transfer the same sparsified payload.
func (c *Cluster) UniformLoad(downBytes, upBytes int, computeSeconds float64) []ClientLoad {
	loads := make([]ClientLoad, c.cfg.NumClients)
	for i := range loads {
		loads[i] = ClientLoad{DownBytes: downBytes, UpBytes: upBytes, ComputeSeconds: computeSeconds}
	}
	return loads
}

// quorumTie is the absolute snap distance for quorum rounding: a product
// participation·n within quorumTie of an integer is treated AS that integer
// (the tie policy). This absorbs float64 representation error in fractions
// like 0.7·10, where the binary product lands at 6.999999999999999 and a
// naive Ceil would demand 7→7 but a fudge-factor like the historical
// `+0.999999` could push 64·0.015625 = 1.0 up to 2, over-counting — or,
// worse, products within 1e-6 *below* an integer could slip under the fudge
// and under-count the quorum by one.
const quorumTie = 1e-6

// quorumSize is the participation quorum: the smallest count of clients
// that covers fraction p of n, i.e. ⌈p·n⌉ with ties snapped to the nearest
// integer (quorumTie policy) and a floor of one client.
func quorumSize(n int, p float64) int {
	x := float64(n) * p
	if r := math.Round(x); math.Abs(x-r) <= quorumTie {
		x = r
	}
	q := int(math.Ceil(x))
	if q < 1 {
		q = 1
	}
	if q > n {
		q = n
	}
	return q
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ComputeModel estimates nominal local-training seconds per round for a
// model of the given parameter count, calibrated so the paper's workloads
// land near the paper's compute times (e.g. ResNet-18's 11.7 M parameters
// with 50 iterations of batch 32 ≈ 70 s of client compute on a
// 2-vCPU device).
type ComputeModel struct {
	// SecondsPerParamIter is the per-parameter per-iteration cost.
	SecondsPerParamIter float64
}

// DefaultComputeModel returns a calibration matching the paper's observed
// per-round compute times on c6i.large-class hardware.
func DefaultComputeModel() ComputeModel {
	// 11.7e6 params × 50 iters × k ≈ 70 s → k ≈ 1.2e-7.
	return ComputeModel{SecondsPerParamIter: 1.2e-7}
}

// RoundCompute returns nominal seconds for localIters iterations over a
// model with paramCount parameters.
func (m ComputeModel) RoundCompute(paramCount, localIters int) float64 {
	return m.SecondsPerParamIter * float64(paramCount) * float64(localIters)
}
