package netem

import (
	"fmt"
	"math/rand"
)

// AsyncProcess is the asynchronous-rounds counterpart of Cluster.Round:
// instead of a quorum cut over one synchronized cohort, each client is an
// independent arrival process — train, upload, pull, repeat — and the
// caller (the fl engine's event loop) advances simulated time from one
// arrival to the next.
//
// The process shares the cluster's per-client heterogeneity draws (compute
// speed, bandwidth multiplier) so sync and async comparisons see the same
// device population, but carries a dedicated per-client RNG stream for
// jitter and dropout: a client's k-th cycle draws the same noise no matter
// how the other clients' arrivals interleave, which is what makes the
// async schedule a pure function of (Config.Seed, per-client cycle
// counts) — the determinism contract of DESIGN.md §5i.
type AsyncProcess struct {
	c    *Cluster
	rngs []*rand.Rand
}

// AsyncProcess derives the per-client arrival model from the cluster.
func (c *Cluster) AsyncProcess() *AsyncProcess {
	rngs := make([]*rand.Rand, c.cfg.NumClients)
	for i := range rngs {
		// Distinct deterministic stream per client, decoupled from the
		// cluster's own rng (which the sync path consumes round-by-round).
		rngs[i] = rand.New(rand.NewSource(c.cfg.Seed*1_000_003 + int64(i)*7919 + 1))
	}
	return &AsyncProcess{c: c, rngs: rngs}
}

// CycleTime returns the wall-clock seconds client i needs for one full
// cycle under the given load: download the global, train, upload, plus
// two propagation latencies. The formula and the fair-share server cap
// match Cluster.Round, with the jitter drawn from the client's private
// stream.
func (p *AsyncProcess) CycleTime(i int, l ClientLoad) float64 {
	if i < 0 || i >= p.c.cfg.NumClients {
		panic(fmt.Sprintf("netem: CycleTime client %d of %d", i, p.c.cfg.NumClients))
	}
	cfg := p.c.cfg
	serverShare := Mbps(cfg.ServerBandwidthMbps) / float64(cfg.NumClients)
	jitter := 1 + cfg.RoundJitter*(2*p.rngs[i].Float64()-1)
	down := minf(Mbps(cfg.ClientDownlinkMbps)*p.c.bwMult[i], serverShare)
	up := minf(Mbps(cfg.ClientUplinkMbps)*p.c.bwMult[i], serverShare)
	return float64(l.DownBytes)/down +
		l.ComputeSeconds/p.c.speeds[i]*jitter +
		float64(l.UpBytes)/up +
		2*cfg.LatencySeconds
}

// Dropped draws whether client i's arrival is lost this cycle (crash,
// partition, battery death). A dropped cycle's work never reaches the
// server; the client restarts its next cycle from the stale state it has.
// The draw order per cycle is fixed — CycleTime at scheduling, Dropped at
// arrival — so the schedule stays seed-deterministic.
func (p *AsyncProcess) Dropped(i int) bool {
	cfg := p.c.cfg
	return cfg.DropoutProb > 0 && p.rngs[i].Float64() < cfg.DropoutProb
}
