package netem

import "testing"

func TestDropoutExcludesClients(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.DropoutProb = 0.3
	cfg.Participation = 1 // quorum = everyone alive
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Round(c.UniformLoad(100, 100, 1))
	if len(out.Participants) == 100 {
		t.Error("30% dropout should exclude some clients")
	}
	if len(out.Participants) < 40 {
		t.Errorf("dropout excluded %d of 100, far beyond 30%%", 100-len(out.Participants))
	}
}

func TestDropoutZeroIsNoop(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Participation = 1
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Round(c.UniformLoad(10, 10, 1))
	if len(out.Participants) != 10 {
		t.Errorf("no dropout: participants = %d, want 10", len(out.Participants))
	}
}

func TestTotalDropoutYieldsEmptyRound(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.DropoutProb = 1
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Round(c.UniformLoad(10, 10, 1))
	if len(out.Participants) != 0 {
		t.Errorf("total dropout: participants = %d, want 0", len(out.Participants))
	}
	if out.Duration <= 0 {
		t.Error("wasted round must still consume time")
	}
}
