package netem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMbps(t *testing.T) {
	if got := Mbps(8); got != 1e6 {
		t.Errorf("Mbps(8) = %v bytes/s, want 1e6", got)
	}
}

func TestNewClusterValidation(t *testing.T) {
	tests := []struct {
		name string
		mod  func(*Config)
	}{
		{"zero-clients", func(c *Config) { c.NumClients = 0 }},
		{"bad-participation", func(c *Config) { c.Participation = 0 }},
		{"participation-above-one", func(c *Config) { c.Participation = 1.5 }},
		{"zero-uplink", func(c *Config) { c.ClientUplinkMbps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(8)
			tt.mod(&cfg)
			if _, err := NewCluster(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRoundTimingDominatedByTransfer(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.ComputeHeterogeneity = 0
	cfg.RoundJitter = 0
	cfg.LatencySeconds = 0
	cfg.Participation = 1
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 13.7 Mbps = 1.7125e6 B/s. 1.7125 MB up+down → exactly 2 s transfer.
	bytes := int(Mbps(13.7))
	out := c.Round(c.UniformLoad(bytes, bytes, 1))
	want := 3.0 // 1 s down + 1 s compute + 1 s up
	if math.Abs(out.Duration-want) > 1e-9 {
		t.Errorf("Duration = %v, want %v", out.Duration, want)
	}
}

func TestRoundParticipationQuorum(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Participation = 0.7
	cfg.ComputeHeterogeneity = 0
	cfg.RoundJitter = 0
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loads := c.UniformLoad(0, 0, 1)
	// Make clients 7, 8, 9 much slower; they must be excluded.
	for i := 7; i < 10; i++ {
		loads[i].ComputeSeconds = 100
	}
	out := c.Round(loads)
	if len(out.Participants) != 7 {
		t.Fatalf("participants = %d, want 7", len(out.Participants))
	}
	for _, p := range out.Participants {
		if p >= 7 {
			t.Errorf("slow client %d included in quorum", p)
		}
	}
	if out.Duration > 50 {
		t.Errorf("round waited for stragglers: %v s", out.Duration)
	}
}

// Property: smaller payloads never yield a longer round.
func TestRoundMonotoneInPayload(t *testing.T) {
	f := func(seed int64, kb uint16) bool {
		cfg := DefaultConfig(6)
		cfg.Seed = seed
		cfg.RoundJitter = 0
		small, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		big, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		b := int(kb) * 100
		outSmall := small.Round(small.UniformLoad(b, b, 1))
		outBig := big.Round(big.UniformLoad(b*2+100, b*2+100, 1))
		return outSmall.Duration <= outBig.Duration+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestServerBandwidthSharing(t *testing.T) {
	// With a tiny server link the server share, not the client link,
	// bounds transfers.
	cfg := DefaultConfig(10)
	cfg.ServerBandwidthMbps = 13.7 // shared across 10 clients → 1.37 each
	cfg.ComputeHeterogeneity = 0
	cfg.RoundJitter = 0
	cfg.LatencySeconds = 0
	cfg.Participation = 1
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bytes := int(Mbps(1.37)) // 1 s at the shared rate
	out := c.Round(c.UniformLoad(bytes, 0, 0))
	if math.Abs(out.Duration-1) > 1e-6 {
		t.Errorf("Duration = %v, want 1 (server-share bound)", out.Duration)
	}
}

func TestHeterogeneityDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig(8)
	a, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oa := a.Round(a.UniformLoad(1000, 1000, 1))
	ob := b.Round(b.UniformLoad(1000, 1000, 1))
	if oa.Duration != ob.Duration {
		t.Error("same seed must give identical timing")
	}
}

func TestComputeModelCalibration(t *testing.T) {
	m := DefaultComputeModel()
	// ResNet-18-scale: 11.7 M params × 50 iters ≈ 70 s nominal.
	got := m.RoundCompute(11_700_000, 50)
	if got < 50 || got > 90 {
		t.Errorf("ResNet compute = %v s, want ≈70 s", got)
	}
	if m.RoundCompute(0, 50) != 0 {
		t.Error("zero params must cost zero compute")
	}
}

func TestClientTimesComplete(t *testing.T) {
	cfg := DefaultConfig(5)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Round(c.UniformLoad(100, 100, 0.5))
	if len(out.ClientTimes) != 5 {
		t.Fatalf("ClientTimes length = %d, want 5", len(out.ClientTimes))
	}
	for i, ct := range out.ClientTimes {
		if ct <= 0 {
			t.Errorf("client %d time = %v, want positive", i, ct)
		}
	}
}
