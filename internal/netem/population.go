package netem

import (
	"fmt"
	"math"
	"sort"
)

// Population-scale timing model: the hierarchical companion to Cluster.
// Where Cluster times a flat 10^2-node testbed round, PopulationModel
// times a cohort round sampled from 10^5–10^6 registered devices and
// aggregated through a multi-tier tree (fl.Tree): cohort members upload
// to leaf aggregators, each tier forwards one partial-sum message upward,
// and the root's fan-in is the tree fanout rather than the cohort size.
//
// Per-member heterogeneity is derived by hashing (seed, id) — every
// registered device has a stable bandwidth/compute profile without the
// model holding any O(population) state, so a 10^6-member registry costs
// nothing until a member is actually sampled into a cohort. All draws are
// deterministic given (seed, round, id): two runs over the same cohort
// see identical timings regardless of call history, which keeps engine
// runs reproducible and lets the flat-vs-tree comparisons hold the
// network constant.
type PopulationModel struct {
	cfg PopulationConfig
}

// PopulationConfig describes the population-scale deployment.
type PopulationConfig struct {
	// PopulationSize is the number of registered devices (profiles exist
	// for ids 0..PopulationSize-1; other ids still hash to valid profiles).
	PopulationSize int
	// ClientUplinkMbps / ClientDownlinkMbps are the nominal device access
	// links; per-device lognormal spread comes from BandwidthSigma.
	ClientUplinkMbps   float64
	ClientDownlinkMbps float64
	// BandwidthSigma is the lognormal sigma of the per-device bandwidth
	// multiplier (FedScale-style device diversity; 0 = homogeneous).
	BandwidthSigma float64
	// ComputeHeterogeneity spreads per-device compute speed uniformly in
	// [1-h, 1+h] of nominal.
	ComputeHeterogeneity float64
	// RoundJitter is the per-(round, device) multiplicative compute noise.
	RoundJitter float64
	// AggregatorBandwidthMbps is each leaf/mid aggregator's uplink toward
	// its parent tier (datacenter-class, shared by its fanout siblings at
	// the receiving end).
	AggregatorBandwidthMbps float64
	// RootBandwidthMbps is the root's aggregate ingest link.
	RootBandwidthMbps float64
	// LatencySeconds is the device access one-way propagation delay;
	// TierLatencySeconds the per-tier hop delay between aggregators.
	LatencySeconds     float64
	TierLatencySeconds float64
	// Participation is the fraction of earliest cohort members the round
	// waits for (the paper's 70 % rule applied at cohort scope).
	Participation float64
	// Fanout is the aggregation-tree fanout (rounded up to a power of two
	// by fl.Tree; the timing model uses it as given).
	Fanout int
	// Seed keys every profile and jitter hash.
	Seed int64
}

// DefaultPopulationConfig returns a population-scale deployment patterned
// on the paper's testbed numbers: device links match the flat cluster,
// aggregators sit on datacenter links.
func DefaultPopulationConfig(populationSize, fanout int) PopulationConfig {
	return PopulationConfig{
		PopulationSize:          populationSize,
		ClientUplinkMbps:        13.7,
		ClientDownlinkMbps:      13.7,
		BandwidthSigma:          0.25,
		ComputeHeterogeneity:    0.2,
		RoundJitter:             0.05,
		AggregatorBandwidthMbps: 1_000,
		RootBandwidthMbps:       10_000,
		LatencySeconds:          0.02,
		TierLatencySeconds:      0.002,
		Participation:           0.7,
		Fanout:                  fanout,
		Seed:                    1,
	}
}

// NewPopulationModel validates the config and builds the model (which
// holds no per-member state).
func NewPopulationModel(cfg PopulationConfig) (*PopulationModel, error) {
	if cfg.PopulationSize <= 0 {
		return nil, fmt.Errorf("netem: PopulationSize = %d", cfg.PopulationSize)
	}
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("netem: Fanout = %d below 2", cfg.Fanout)
	}
	if cfg.Participation <= 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("netem: Participation = %v outside (0, 1]", cfg.Participation)
	}
	if cfg.ClientUplinkMbps <= 0 || cfg.ClientDownlinkMbps <= 0 ||
		cfg.AggregatorBandwidthMbps <= 0 || cfg.RootBandwidthMbps <= 0 {
		return nil, fmt.Errorf("netem: non-positive bandwidth in %+v", cfg)
	}
	return &PopulationModel{cfg: cfg}, nil
}

// Config returns the model configuration.
func (m *PopulationModel) Config() PopulationConfig { return m.cfg }

// ClientProfile is one device's stable heterogeneity draw.
type ClientProfile struct {
	// UplinkBps / DownlinkBps are the device's effective access-link
	// capacities in bytes per second.
	UplinkBps, DownlinkBps float64
	// Speed is the compute-speed multiplier (1 = nominal).
	Speed float64
}

// Profile derives the device's profile from (seed, id): O(1), identical
// on every call, independent of sampling history.
func (m *PopulationModel) Profile(id int) ClientProfile {
	// Two independent uniforms per draw dimension, from distinct hash
	// streams of the same (seed, id) key.
	u1 := hashUnit(m.cfg.Seed, 0x70726f66696c6531, uint64(uint32(id)), 0)
	u2 := hashUnit(m.cfg.Seed, 0x70726f66696c6532, uint64(uint32(id)), 0)
	u3 := hashUnit(m.cfg.Seed, 0x70726f66696c6533, uint64(uint32(id)), 0)
	speed := 1 + m.cfg.ComputeHeterogeneity*(2*u1-1)
	bw := 1.0
	if m.cfg.BandwidthSigma > 0 {
		// Lognormal with median 1 via Box–Muller on the two hash uniforms.
		z := math.Sqrt(-2*math.Log(1-u2)) * math.Cos(2*math.Pi*u3)
		bw = math.Exp(m.cfg.BandwidthSigma * z)
	}
	return ClientProfile{
		UplinkBps:   Mbps(m.cfg.ClientUplinkMbps) * bw,
		DownlinkBps: Mbps(m.cfg.ClientDownlinkMbps) * bw,
		Speed:       speed,
	}
}

// CohortOutcome reports the emulated timing of one tree-aggregated round.
type CohortOutcome struct {
	// Duration is the wall-clock span from round start until the root
	// holds the global partial: quorum member time plus the tier cascade.
	Duration float64
	// Participants lists the accepted (earliest-quorum) member ids in
	// ascending device-intrinsic completion-time order. Membership is
	// topology-independent: the same cohort yields the same participants
	// at any fanout, so flat and tree arms train identical trajectories.
	Participants []int
	// MemberTimes holds each cohort member's individual completion time,
	// aligned with the cohort argument.
	MemberTimes []float64
	// Tiers is the aggregation tier count (leaves through root).
	Tiers int
	// TierForwardSeconds[i] is the partial forwarding span from tier i to
	// tier i+1 (len Tiers-1).
	TierForwardSeconds []float64
	// LeafRxBytes is the total payload received across all leaves (the
	// flat server would have received all of it at the root).
	LeafRxBytes int
	// RootRxBytes is what the root actually ingests: one partial per
	// root-tier child.
	RootRxBytes int
}

// CohortRound times one round over the sampled cohort. loads must align
// with cohort (use UniformCohortLoad for the common identical-payload
// case); partialBytes is the encoded size of one partial-sum message
// (sum + weight + traffic, see sparse.PartialPayloadSize). The round
// closes when the earliest ⌈participation·k⌉ members are in, then the
// partial cascade climbs the tree.
func (m *PopulationModel) CohortRound(round int, cohort []int, loads []ClientLoad, partialBytes int) CohortOutcome {
	if len(loads) != len(cohort) {
		panic(fmt.Sprintf("netem: CohortRound got %d loads for %d members", len(loads), len(cohort)))
	}
	k := len(cohort)
	if k == 0 {
		return CohortOutcome{Tiers: 0}
	}

	// Leaf fan-in: each leaf serves up to Fanout members concurrently on
	// an aggregator link, so a member's effective rate is bounded by its
	// access link and by its fair share of the leaf ingest link.
	//
	// Quorum MEMBERSHIP, however, is decided by device-intrinsic times
	// (access link + compute only): which devices are fast enough to make
	// the round is a property of the fleet, not of the server topology.
	// This is what keeps the flat-vs-tree comparison an identical
	// training trajectory — the same participants train and fold in both
	// arms, bit-for-bit — while infrastructure contention still shows up
	// where it belongs, in the round Duration (a 1000-fan-in flat root
	// stretches everyone's contended upload; the tree's leaves do not).
	leafShare := Mbps(m.cfg.AggregatorBandwidthMbps) / float64(m.cfg.Fanout)

	times := make([]float64, k)
	intrinsic := make([]float64, k)
	order := make([]int, k)
	leafRx := 0
	for i, id := range cohort {
		p := m.Profile(id)
		jitter := 1 + m.cfg.RoundJitter*(2*hashUnit(m.cfg.Seed, 0x6a697474657234, uint64(uint32(id)), uint64(round))-1)
		down := minf(p.DownlinkBps, leafShare)
		up := minf(p.UplinkBps, leafShare)
		elapsed := loads[i].ComputeSeconds/p.Speed*jitter + 2*m.cfg.LatencySeconds
		intrinsic[i] = elapsed +
			float64(loads[i].DownBytes)/p.DownlinkBps +
			float64(loads[i].UpBytes)/p.UplinkBps
		times[i] = elapsed +
			float64(loads[i].DownBytes)/down +
			float64(loads[i].UpBytes)/up
		order[i] = i
		leafRx += loads[i].UpBytes
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := intrinsic[order[a]], intrinsic[order[b]]
		if ta != tb {
			return ta < tb
		}
		return cohort[order[a]] < cohort[order[b]] // deterministic ties
	})
	quorum := quorumSize(k, m.cfg.Participation)
	participants := make([]int, quorum)
	base := 0.0
	for i := 0; i < quorum; i++ {
		participants[i] = cohort[order[i]]
		if t := times[order[i]]; t > base {
			base = t
		}
	}

	// Tier cascade: width shrinks by Fanout per tier; each hop forwards
	// one partial over the tier link's per-child fair share plus the hop
	// latency. Transfers within a tier run in parallel, so a tier's span
	// is one transfer.
	tiers := 1
	widths := []int{(k + m.cfg.Fanout - 1) / m.cfg.Fanout}
	for w := widths[0]; w > 1; w = (w + m.cfg.Fanout - 1) / m.cfg.Fanout {
		tiers++
		widths = append(widths, (w+m.cfg.Fanout-1)/m.cfg.Fanout)
	}
	forward := make([]float64, 0, tiers-1)
	total := base
	for hop := 0; hop < tiers-1; hop++ {
		bw := Mbps(m.cfg.AggregatorBandwidthMbps)
		if hop == tiers-2 {
			bw = Mbps(m.cfg.RootBandwidthMbps)
		}
		span := float64(partialBytes)/(bw/float64(m.cfg.Fanout)) + m.cfg.TierLatencySeconds
		forward = append(forward, span)
		total += span
	}
	// A single-tier tree is the degenerate flat case: the root ingests the
	// member uploads directly. With tiers, the root receives one partial
	// per root-tier child.
	rootRx := leafRx
	if tiers >= 2 {
		rootRx = widths[len(widths)-2] * partialBytes
	}
	return CohortOutcome{
		Duration:           total,
		Participants:       participants,
		MemberTimes:        times,
		Tiers:              tiers,
		TierForwardSeconds: forward,
		LeafRxBytes:        leafRx,
		RootRxBytes:        rootRx,
	}
}

// UniformCohortLoad builds identical loads for every cohort member.
func UniformCohortLoad(k, downBytes, upBytes int, computeSeconds float64) []ClientLoad {
	loads := make([]ClientLoad, k)
	for i := range loads {
		loads[i] = ClientLoad{DownBytes: downBytes, UpBytes: upBytes, ComputeSeconds: computeSeconds}
	}
	return loads
}

// hashUnit maps (seed, stream, id, round) to a uniform float64 in [0, 1)
// through a SplitMix64-style avalanche: a pure function of its key, so
// profile and jitter draws are order- and history-independent.
func hashUnit(seed int64, stream, id, round uint64) float64 {
	x := uint64(seed) ^ stream
	x ^= id*0xd1342543de82ef95 + 0x2545f4914f6cdd1d
	x ^= round * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
