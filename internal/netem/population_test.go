package netem

import (
	"math"
	"testing"
)

func TestPopulationProfilesDeterministic(t *testing.T) {
	m, err := NewPopulationModel(DefaultPopulationConfig(100000, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, 77, 99999} {
		a, b := m.Profile(id), m.Profile(id)
		if a != b {
			t.Fatalf("profile for %d not stable: %+v vs %+v", id, a, b)
		}
		if a.Speed <= 0 || a.UplinkBps <= 0 || a.DownlinkBps <= 0 {
			t.Fatalf("profile for %d not positive: %+v", id, a)
		}
	}
	if m.Profile(3) == m.Profile(4) {
		t.Fatal("adjacent ids drew identical profiles (hash not diffusing)")
	}
	// A different seed re-draws the population.
	cfg := DefaultPopulationConfig(100000, 8)
	cfg.Seed = 2
	m2, _ := NewPopulationModel(cfg)
	if m.Profile(7) == m2.Profile(7) {
		t.Fatal("seed does not key the profile draw")
	}
}

func TestPopulationCohortRoundDeterministic(t *testing.T) {
	m, err := NewPopulationModel(DefaultPopulationConfig(200000, 8))
	if err != nil {
		t.Fatal(err)
	}
	cohort := make([]int, 1000)
	for i := range cohort {
		cohort[i] = i * 123 % 200000
	}
	loads := UniformCohortLoad(len(cohort), 1<<20, 1<<18, 30)
	a := m.CohortRound(5, cohort, loads, 4096)
	b := m.CohortRound(5, cohort, loads, 4096)
	if a.Duration != b.Duration || len(a.Participants) != len(b.Participants) {
		t.Fatal("cohort round not deterministic")
	}
	for i := range a.Participants {
		if a.Participants[i] != b.Participants[i] {
			t.Fatal("participant order not deterministic")
		}
	}
	// Distinct rounds see distinct jitter.
	c := m.CohortRound(6, cohort, loads, 4096)
	if a.Duration == c.Duration {
		t.Fatal("round index does not key the jitter draw")
	}
}

func TestPopulationTierTopologyAndRootBytes(t *testing.T) {
	m, err := NewPopulationModel(DefaultPopulationConfig(100000, 8))
	if err != nil {
		t.Fatal(err)
	}
	cohort := make([]int, 1000)
	for i := range cohort {
		cohort[i] = i
	}
	loads := UniformCohortLoad(1000, 1<<20, 1<<18, 30)
	out := m.CohortRound(0, cohort, loads, 4096)
	// 1000 members, fanout 8: 125 leaves -> 16 -> 2 -> 1 = 4 tiers.
	if out.Tiers != 4 {
		t.Fatalf("tiers = %d, want 4", out.Tiers)
	}
	if len(out.TierForwardSeconds) != 3 {
		t.Fatalf("forward hops = %d, want 3", len(out.TierForwardSeconds))
	}
	if out.LeafRxBytes != 1000*(1<<18) {
		t.Fatalf("leaf rx = %d, want %d", out.LeafRxBytes, 1000*(1<<18))
	}
	if out.RootRxBytes != 2*4096 {
		t.Fatalf("root rx = %d, want %d (2 root children)", out.RootRxBytes, 2*4096)
	}
	if out.RootRxBytes >= out.LeafRxBytes {
		t.Fatal("tree did not reduce root ingest below flat fan-in")
	}
	if q := len(out.Participants); q != 700 {
		t.Fatalf("quorum = %d, want 700", q)
	}
	// Duration covers the quorum member plus every forward hop.
	sum := 0.0
	for _, s := range out.TierForwardSeconds {
		sum += s
	}
	if out.Duration <= sum {
		t.Fatal("duration does not include member time")
	}
	// Degenerate single-tier case: root ingests uploads directly.
	small := m.CohortRound(0, cohort[:4], loads[:4], 4096)
	if small.Tiers != 1 || small.RootRxBytes != 4*(1<<18) {
		t.Fatalf("single-tier outcome = %+v", small)
	}
}

func TestPopulationScale(t *testing.T) {
	// 10^5 registered, 1k cohort: the profile path must be O(cohort), not
	// O(population) — this test simply exercises it end to end.
	m, err := NewPopulationModel(DefaultPopulationConfig(100000, 32))
	if err != nil {
		t.Fatal(err)
	}
	cohort := make([]int, 1000)
	for i := range cohort {
		cohort[i] = (i * 97) % 100000
	}
	out := m.CohortRound(0, cohort, UniformCohortLoad(1000, 1<<22, 1<<20, 60), 1<<16)
	if out.Duration <= 0 || math.IsNaN(out.Duration) || math.IsInf(out.Duration, 0) {
		t.Fatalf("duration = %v", out.Duration)
	}
	// Fanout 32: 32 leaves -> 1 root tier = 2 tiers.
	if out.Tiers != 2 {
		t.Fatalf("tiers = %d, want 2", out.Tiers)
	}
	if out.RootRxBytes != 32*(1<<16) {
		t.Fatalf("root rx = %d, want %d", out.RootRxBytes, 32*(1<<16))
	}
}

func TestPopulationConfigValidation(t *testing.T) {
	bad := []PopulationConfig{
		{},
		{PopulationSize: 10, Fanout: 1, Participation: 0.5, ClientUplinkMbps: 1, ClientDownlinkMbps: 1, AggregatorBandwidthMbps: 1, RootBandwidthMbps: 1},
		{PopulationSize: 10, Fanout: 2, Participation: 0, ClientUplinkMbps: 1, ClientDownlinkMbps: 1, AggregatorBandwidthMbps: 1, RootBandwidthMbps: 1},
		{PopulationSize: 10, Fanout: 2, Participation: 0.5, ClientUplinkMbps: 0, ClientDownlinkMbps: 1, AggregatorBandwidthMbps: 1, RootBandwidthMbps: 1},
	}
	for i, cfg := range bad {
		if _, err := NewPopulationModel(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestParticipantsTopologyIndependent(t *testing.T) {
	// Quorum membership is a property of the fleet, not of the server
	// topology: the same cohort must select the same participants at any
	// fanout, even when leaf fan-in contention binds hard (here the flat
	// arm's per-member share of the aggregator link is 1/500th of the
	// tree arm's), so flat and tree runs train identical trajectories.
	// Contention still shows up in Duration.
	cohort := make([]int, 1000)
	for i := range cohort {
		cohort[i] = (i * 131) % 100000
	}
	loads := UniformCohortLoad(1000, 1<<22, 1<<20, 60)
	var outs []CohortOutcome
	for _, fanout := range []int{2, 8, 1000} {
		m, err := NewPopulationModel(DefaultPopulationConfig(100000, fanout))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, m.CohortRound(3, cohort, loads, 1<<16))
	}
	for i := 1; i < len(outs); i++ {
		if len(outs[i].Participants) != len(outs[0].Participants) {
			t.Fatalf("arm %d quorum %d != %d", i, len(outs[i].Participants), len(outs[0].Participants))
		}
		for j := range outs[0].Participants {
			if outs[i].Participants[j] != outs[0].Participants[j] {
				t.Fatalf("arm %d participant[%d] = %d, want %d", i, j, outs[i].Participants[j], outs[0].Participants[j])
			}
		}
	}
	// The fanout-1000 (flat) arm shares the aggregator link 1000 ways;
	// its contended round must be strictly slower than fanout 2's.
	if outs[2].Duration <= outs[0].Duration {
		t.Fatalf("flat duration %v not above tree duration %v", outs[2].Duration, outs[0].Duration)
	}
}
