package netem

import (
	"math"
	"testing"
)

// quorumOracle computes ⌈n·(a/b)⌉ in exact integer arithmetic, the ground
// truth the float64 quorumSize must match for every rational participation.
func quorumOracle(n, a, b int) int {
	q := (n*a + b - 1) / b
	if q < 1 {
		q = 1
	}
	if q > n {
		q = n
	}
	return q
}

// TestQuorumSizeMatchesRationalOracle sweeps an n × Participation grid of
// exact rationals — including every fraction whose float64 product lands
// within representation error of an integer (e.g. 0.7·10, 0.3·30) — and
// checks the float computation against integer arithmetic. The historical
// `int(x + 0.999999)` fudge both over-counted exact products by one and
// under-counted products landing ≥ 1e-6 below an integer.
func TestQuorumSizeMatchesRationalOracle(t *testing.T) {
	for n := 1; n <= 400; n++ {
		for b := 1; b <= 20; b++ {
			for a := 1; a <= b; a++ {
				p := float64(a) / float64(b)
				got := quorumSize(n, p)
				want := quorumOracle(n, a, b)
				if got != want {
					t.Fatalf("quorumSize(%d, %d/%d = %g) = %d, want %d", n, a, b, p, got, want)
				}
			}
		}
	}
}

// TestQuorumSizeTiePolicy pins the explicit tie policy: a product within
// 1e-6 of an integer snaps TO that integer (absorbing float representation
// error in either direction), while a product a clear margin above an
// integer ceils up.
func TestQuorumSizeTiePolicy(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		// Exact products (the fudge factor's over-count regime): 64·(1/64)=1.
		{64, 1.0 / 64, 1},
		{128, 0.5, 64},
		{10, 0.7, 7},   // 6.999999999999999 in float64 — must snap to 7, not ceil to 7 via luck
		{30, 0.3, 9},   // 9.000000000000002 in float64 — must snap to 9, not ceil to 10
		{100, 0.07, 7}, // 7.000000000000001
		// Within the 1e-6 snap window from below: treated as the integer.
		{100, (7 - 5e-7) / 100, 7},
		// Within the snap window from above: snapped DOWN to the integer,
		// not ceiled to the next.
		{100, (7 + 5e-7) / 100, 7},
		// A clear margin above an integer: genuine ceil.
		{100, (7 + 1e-3) / 100, 8},
		// Floor of one client and cap at n.
		{5, 0.01, 1},
		{5, 1.0, 5},
	}
	for _, c := range cases {
		if got := quorumSize(c.n, c.p); got != c.want {
			t.Errorf("quorumSize(%d, %v) = %d, want %d (product %v)", c.n, c.p, got, c.want, float64(c.n)*c.p)
		}
	}
}

// TestRoundQuorumNeverUnderCounts re-checks through the public Round path:
// with no dropout the participant count must be exactly ⌈P·n⌉ for the
// near-integer participations the fudge factor used to mishandle.
func TestRoundQuorumNeverUnderCounts(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		want int
	}{{10, 0.7, 7}, {30, 0.3, 9}, {64, 0.015625, 1}, {128, 0.7, 90}} {
		cfg := DefaultConfig(tc.n)
		cfg.Participation = tc.p
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := cl.Round(cl.UniformLoad(1000, 1000, 1))
		if len(out.Participants) != tc.want {
			t.Errorf("n=%d P=%v: %d participants, want %d", tc.n, tc.p, len(out.Participants), tc.want)
		}
	}
}

// TestAsyncProcessDeterministicPerSeed: two processes derived from
// identically-configured clusters draw bit-identical cycle times and
// dropout decisions regardless of interleaving across clients.
func TestAsyncProcessDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.BandwidthSigma = 0.4
	cfg.DropoutProb = 0.2
	mk := func() *AsyncProcess {
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cl.AsyncProcess()
	}
	a, b := mk(), mk()
	load := ClientLoad{DownBytes: 50_000, UpBytes: 50_000, ComputeSeconds: 2}

	// a draws client-major, b cycle-major: per-client streams must make
	// the interleaving irrelevant.
	type draw struct {
		t float64
		d bool
	}
	const cycles = 5
	got := map[[2]int]draw{}
	for i := 0; i < cfg.NumClients; i++ {
		for k := 0; k < cycles; k++ {
			got[[2]int{i, k}] = draw{t: a.CycleTime(i, load), d: a.Dropped(i)}
		}
	}
	for k := 0; k < cycles; k++ {
		for i := 0; i < cfg.NumClients; i++ {
			w := draw{t: b.CycleTime(i, load), d: b.Dropped(i)}
			g := got[[2]int{i, k}]
			if math.Float64bits(g.t) != math.Float64bits(w.t) || g.d != w.d {
				t.Fatalf("client %d cycle %d: draws diverge (%v,%v) vs (%v,%v)", i, k, g.t, g.d, w.t, w.d)
			}
		}
	}
}

// TestAsyncCycleTimeMatchesRoundFormula: the per-cycle formula must agree
// with the synchronous Round model for a jitter-free, homogeneous cluster.
func TestAsyncCycleTimeMatchesRoundFormula(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.ComputeHeterogeneity = 0
	cfg.RoundJitter = 0
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := cl.AsyncProcess()
	load := ClientLoad{DownBytes: 100_000, UpBytes: 100_000, ComputeSeconds: 3}
	want := cl.Round(cl.UniformLoad(load.DownBytes, load.UpBytes, load.ComputeSeconds)).ClientTimes[0]
	if got := p.CycleTime(0, load); math.Abs(got-want) > 1e-9 {
		t.Errorf("CycleTime = %v, Round per-client time = %v", got, want)
	}
}
