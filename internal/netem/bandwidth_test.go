package netem

import (
	"math"
	"testing"
)

func TestBandwidthHeterogeneitySpreadsTimes(t *testing.T) {
	mk := func(sigma float64) *Cluster {
		cfg := DefaultConfig(32)
		cfg.BandwidthSigma = sigma
		cfg.ComputeHeterogeneity = 0
		cfg.RoundJitter = 0
		cfg.LatencySeconds = 0
		cfg.Participation = 1
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	spread := func(c *Cluster) float64 {
		out := c.Round(c.UniformLoad(1_000_000, 1_000_000, 0))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range out.ClientTimes {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return hi / lo
	}
	homo := spread(mk(0))
	hetero := spread(mk(0.6))
	if math.Abs(homo-1) > 1e-9 {
		t.Errorf("homogeneous spread = %v, want 1", homo)
	}
	if hetero < 1.5 {
		t.Errorf("lognormal σ=0.6 spread = %v, want > 1.5", hetero)
	}
}

func TestBandwidthMultiplierMedianNearOne(t *testing.T) {
	cfg := DefaultConfig(2000)
	cfg.BandwidthSigma = 0.5
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for _, m := range c.bwMult {
		if m > 1 {
			above++
		}
	}
	frac := float64(above) / 2000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction above median = %v, want ≈0.5", frac)
	}
}
