// Package par provides the process-wide bounded worker pool that every hot
// loop in the training stack shares.
//
// The pool holds GOMAXPROCS long-lived workers. Parallelize splits an index
// range into per-worker chunks and runs them on the pool; when the pool is
// saturated — e.g. a kernel invoked from inside another parallel region, or
// from the federated engine's per-client goroutines — chunks simply run on
// the calling goroutine, so nested use can never deadlock and the number of
// compute-bound goroutines stays bounded by the pool size.
//
// Determinism contract: Parallelize only decides *which goroutine* executes
// a chunk, never the chunk boundaries' effect on arithmetic. Callers that
// need bit-identical results across worker counts must make per-element
// computation order independent of chunking; ParallelizeGrain helps by
// aligning chunk boundaries to a fixed grain so block-structured kernels see
// the same absolute block decomposition at every worker count.
//
// Beyond the pool, the package exposes a process-wide compute-token budget
// (AcquireToken/ReleaseToken) for coarse-grained compute sections — e.g. one
// client's whole local-SGD pass — that are started from unbounded goroutine
// fan-outs. The budget holds Workers() tokens, so however many experiment
// runs, engines, and client goroutines are in flight, at most Workers()
// coarse compute sections execute at once and the three nesting levels
// (run-level × client-level × kernel-level) cannot oversubscribe the
// machine. Tokens must never be held across a blocking rendezvous with
// another token holder (a collective barrier, a channel handshake): the
// budget is a throttle, not a lock, and the training stack releases it
// before every synchronization point.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is one generation of workers. SetWorkers swaps the whole generation
// atomically; stale submitters holding the old pool fall back to inline
// execution once its workers have quit.
type pool struct {
	size  int
	tasks chan func()
	quit  chan struct{}
}

var current atomic.Pointer[pool]

func init() {
	n := runtime.GOMAXPROCS(0)
	current.Store(newPool(n))
	budget.resize(n)
}

func newPool(n int) *pool {
	if n < 1 {
		n = 1
	}
	p := &pool{size: n, tasks: make(chan func()), quit: make(chan struct{})}
	// n-1 workers: the goroutine calling Parallelize is always the n-th.
	for i := 0; i < n-1; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	for {
		select {
		case f := <-p.tasks:
			f()
		case <-p.quit:
			return
		}
	}
}

// Workers returns the pool size (the maximum number of goroutines, caller
// included, that Parallelize will use).
func Workers() int { return current.Load().size }

// SetWorkers resizes the pool (and the compute-token budget with it) and
// returns the previous size. It exists for tests (forcing serial or
// oversubscribed execution) and for embedders that want to reserve cores;
// n < 1 is clamped to 1. Concurrent in-flight Parallelize calls finish on
// whichever pool they started with.
func SetWorkers(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	old := current.Swap(newPool(n))
	close(old.quit)
	budget.resize(n)
	return old.size
}

// tokenBudget is a resizable counting semaphore. Unlike a buffered channel
// it survives capacity changes mid-flight: shrinking simply delays new
// acquisitions until outstanding tokens drain below the new capacity.
type tokenBudget struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

var budget tokenBudget

func (b *tokenBudget) resize(n int) {
	b.mu.Lock()
	if b.cond == nil {
		b.cond = sync.NewCond(&b.mu)
	}
	b.cap = n
	b.mu.Unlock()
	b.cond.Broadcast()
}

// AcquireToken blocks until one of the process-wide compute tokens is free
// and claims it. Pair every acquisition with exactly one ReleaseToken, and
// never hold a token across a rendezvous that waits on other token holders
// (see the package comment).
func AcquireToken() {
	b := &budget
	b.mu.Lock()
	for b.used >= b.cap {
		b.cond.Wait()
	}
	b.used++
	b.mu.Unlock()
}

// ReleaseToken returns a token claimed by AcquireToken.
func ReleaseToken() {
	b := &budget
	b.mu.Lock()
	if b.used <= 0 {
		b.mu.Unlock()
		panic("par: ReleaseToken without matching AcquireToken")
	}
	b.used--
	b.mu.Unlock()
	b.cond.Signal()
}

// TokenCap returns the current compute-token capacity (the pool size).
func TokenCap() int {
	b := &budget
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// Parallelize runs fn over the half-open range [0, n) split into contiguous
// chunks, one per worker, and returns when all chunks are done. fn must be
// safe to call concurrently on disjoint ranges. n <= 0 is a no-op.
func Parallelize(n int, fn func(lo, hi int)) { ParallelizeGrain(n, 1, fn) }

// ParallelizeGrain is Parallelize with chunk boundaries aligned to multiples
// of grain (the final chunk absorbs the tail). Kernels that process fixed
// absolute blocks of the index space (e.g. 4-row register tiles) pass their
// block size as the grain so the block decomposition — and therefore the
// floating-point result — is identical at every worker count.
func ParallelizeGrain(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := current.Load()
	blocks := (n + grain - 1) / grain
	chunks := p.size
	if blocks < chunks {
		chunks = blocks
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	// Per-chunk block count, rounded up so every chunk boundary is a grain
	// multiple and chunk count never exceeds the worker count.
	per := (blocks + chunks - 1) / chunks
	step := per * grain

	var wg sync.WaitGroup
	for lo := step; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case p.tasks <- task:
		default:
			// Pool saturated (or resized away): run on this goroutine.
			task()
		}
	}
	// The caller always executes the first chunk itself.
	fn(0, min(step, n))
	wg.Wait()
}
