package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelizeCovers verifies every index is visited exactly once for a
// sweep of sizes and worker counts, including n smaller than the pool.
func TestParallelizeCovers(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	for _, w := range []int{1, 2, 4, 7} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 2, 3, 5, 16, 17, 100, 1023} {
			counts := make([]int32, n)
			Parallelize(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", w, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

// TestParallelizeGrainAlignment verifies every chunk boundary except the
// final one is a grain multiple, at several worker counts — the property
// block-tiled kernels rely on for bit-determinism.
func TestParallelizeGrainAlignment(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	for _, w := range []int{1, 2, 4, 5} {
		SetWorkers(w)
		for _, n := range []int{1, 4, 9, 64, 129, 1000} {
			const grain = 4
			var mu sync.Mutex
			total := 0
			ParallelizeGrain(n, grain, func(lo, hi int) {
				if lo%grain != 0 {
					t.Errorf("workers=%d n=%d: chunk start %d not grain-aligned", w, n, lo)
				}
				if hi != n && hi%grain != 0 {
					t.Errorf("workers=%d n=%d: chunk end %d not grain-aligned", w, n, hi)
				}
				mu.Lock()
				total += hi - lo
				mu.Unlock()
			})
			if total != n {
				t.Fatalf("workers=%d n=%d: covered %d indices", w, n, total)
			}
		}
	}
}

// TestNestedParallelize exercises Parallelize called from inside a parallel
// region: the inner calls must complete (inline on saturation) rather than
// deadlock.
func TestNestedParallelize(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var total int64
	Parallelize(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Parallelize(100, func(l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if total != 800 {
		t.Fatalf("nested total = %d, want 800", total)
	}
}

// TestSetWorkers checks clamping and that the previous size is reported.
func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned prev=%d, want %d", prev, orig)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want clamp to 1", Workers())
	}
}

// TestTokenBudgetBounds verifies the compute-token budget never admits more
// than TokenCap() holders at once, across many contending goroutines.
func TestTokenBudgetBounds(t *testing.T) {
	defer SetWorkers(SetWorkers(3))
	if TokenCap() != 3 {
		t.Fatalf("TokenCap() = %d after SetWorkers(3)", TokenCap())
	}
	var inFlight, peak int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				AcquireToken()
				n := atomic.AddInt64(&inFlight, 1)
				for {
					p := atomic.LoadInt64(&peak)
					if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
						break
					}
				}
				atomic.AddInt64(&inFlight, -1)
				ReleaseToken()
			}
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("token budget admitted %d concurrent holders, cap 3", peak)
	}
}

// TestTokenBudgetResize shrinks the budget while tokens are outstanding: the
// holders must drain normally and new acquisitions must respect the new cap.
func TestTokenBudgetResize(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	held := make(chan struct{})
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			AcquireToken()
			held <- struct{}{}
			<-release
			ReleaseToken()
		}()
	}
	for i := 0; i < 4; i++ {
		<-held
	}
	SetWorkers(1) // now over-budget by 3
	acquired := make(chan struct{})
	go func() {
		AcquireToken()
		defer ReleaseToken()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("acquired a token while 4 were outstanding against cap 1")
	default:
	}
	close(release) // drain all 4
	<-acquired     // must eventually proceed once used < 1... (used drains to 0)
}

// TestReleaseTokenUnderflow pins the misuse guard.
func TestReleaseTokenUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ReleaseToken without Acquire did not panic")
		}
	}()
	ReleaseToken()
}

// TestParallelizeConcurrentCallers runs many simultaneous Parallelize calls
// through one small pool; under -race this doubles as the pool's data-race
// check.
func TestParallelizeConcurrentCallers(t *testing.T) {
	defer SetWorkers(SetWorkers(2))
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				Parallelize(64, func(lo, hi int) {
					atomic.AddInt64(&total, int64(hi-lo))
				})
			}
		}()
	}
	wg.Wait()
	if want := int64(8 * 50 * 64); total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}
