package opt

import (
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/nn"
	"fedsu/internal/tensor"
)

func makeParam(vals ...float64) *nn.Param {
	return &nn.Param{
		Name:  "p",
		Value: tensor.FromSlice(append([]float64(nil), vals...), len(vals)),
		Grad:  tensor.New(len(vals)),
	}
}

func TestSGDPlainStep(t *testing.T) {
	p := makeParam(1, 2)
	p.Grad.Data()[0] = 0.5
	p.Grad.Data()[1] = -1
	s := NewSGD(0.1)
	s.Step([]*nn.Param{p})
	if got := p.Value.At(0); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("value[0] = %v, want 0.95", got)
	}
	if got := p.Value.At(1); math.Abs(got-2.1) > 1e-12 {
		t.Errorf("value[1] = %v, want 2.1", got)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := makeParam(2)
	s := NewSGD(0.1, WithWeightDecay(0.5))
	s.Step([]*nn.Param{p})
	// grad = 0 + 0.5*2 = 1 → value = 2 − 0.1 = 1.9
	if got := p.Value.At(0); math.Abs(got-1.9) > 1e-12 {
		t.Errorf("value = %v, want 1.9", got)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := makeParam(0)
	s := NewSGD(1, WithMomentum(0.9))
	// Constant unit gradient: velocities 1, 1.9, 2.71, ...
	wantVel := []float64{1, 1.9, 2.71}
	total := 0.0
	for _, wv := range wantVel {
		p.Grad.Data()[0] = 1
		s.Step([]*nn.Param{p})
		total += wv
		if got := p.Value.At(0); math.Abs(got+total) > 1e-9 {
			t.Fatalf("after velocity %v: value = %v, want %v", wv, got, -total)
		}
		p.Grad.Data()[0] = 0
		p.ZeroGrad()
	}
}

func TestSGDSkipsNoOpt(t *testing.T) {
	p := makeParam(5)
	p.NoOpt = true
	p.Grad.Data()[0] = 100
	s := NewSGD(0.1)
	s.Step([]*nn.Param{p})
	if p.Value.At(0) != 5 {
		t.Errorf("NoOpt param was updated to %v", p.Value.At(0))
	}
}

func TestSchedules(t *testing.T) {
	t.Run("constant", func(t *testing.T) {
		s := Constant()
		if s(0) != 1 || s(1000) != 1 {
			t.Error("constant schedule must always be 1")
		}
	})
	t.Run("step-decay", func(t *testing.T) {
		s := StepDecay(10, 0.5)
		if s(9) != 1 || s(10) != 0.5 || s(20) != 0.25 {
			t.Errorf("step decay = %v %v %v, want 1 0.5 0.25", s(9), s(10), s(20))
		}
	})
	t.Run("inverse-sqrt", func(t *testing.T) {
		s := InverseSqrt(100)
		if s(0) != 1 {
			t.Errorf("inverse-sqrt at 0 = %v, want 1", s(0))
		}
		if got := s(300); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("inverse-sqrt at 300 = %v, want 0.5", got)
		}
		// Must be monotonically non-increasing.
		prev := math.Inf(1)
		for i := 0; i < 1000; i += 37 {
			if v := s(i); v > prev {
				t.Fatalf("schedule increased at step %d", i)
			} else {
				prev = v
			}
		}
	})
}

func TestSGDScheduleApplied(t *testing.T) {
	p := makeParam(0)
	s := NewSGD(1, WithSchedule(StepDecay(1, 0.5)))
	for i := 0; i < 3; i++ {
		p.Grad.Data()[0] = 1
		s.Step([]*nn.Param{p})
		p.ZeroGrad()
	}
	// Updates: 1*1 + 0.5 + 0.25 = 1.75.
	if got := p.Value.At(0); math.Abs(got+1.75) > 1e-12 {
		t.Errorf("value = %v, want -1.75", got)
	}
}

func TestSGDMatchesManualLoop(t *testing.T) {
	// Cross-check the optimizer against the manual update used in nn tests.
	rng := rand.New(rand.NewSource(3))
	p1 := makeParam(rng.Float64(), rng.Float64(), rng.Float64())
	p2 := makeParam(p1.Value.Data()[0], p1.Value.Data()[1], p1.Value.Data()[2])
	s := NewSGD(0.05)
	for step := 0; step < 5; step++ {
		for i := 0; i < 3; i++ {
			g := rng.NormFloat64()
			p1.Grad.Data()[i] = g
			p2.Grad.Data()[i] = g
		}
		s.Step([]*nn.Param{p1})
		p2.Value.AddScaled(-0.05, p2.Grad)
		p1.ZeroGrad()
		p2.ZeroGrad()
	}
	for i := 0; i < 3; i++ {
		if math.Abs(p1.Value.At(i)-p2.Value.At(i)) > 1e-12 {
			t.Fatalf("optimizer diverged from manual SGD at %d", i)
		}
	}
}
