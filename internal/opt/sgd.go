// Package opt implements the optimizers and learning-rate schedules used by
// federated clients: SGD with momentum and weight decay (the paper's
// optimizer) and the schedules its convergence analysis admits.
package opt

import (
	"math"

	"fedsu/internal/nn"
	"fedsu/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum and decoupled
// L2 weight decay, matching the paper's training setup (SGD, weight decay
// 0.001).
//
// The update runs at the parameter storage width: scalars (learning rate,
// momentum, weight decay) round once per Step and the per-element arithmetic
// — including the velocity buffer — stays in the parameter's dtype. At
// float32 this halves the optimizer's memory footprint along with the
// model's; at float64 it is the historical update bit-for-bit.
type SGD struct {
	lr          float64
	momentum    float64
	weightDecay float64
	schedule    Schedule

	velocity   map[*nn.Param][]float64
	velocity32 map[*nn.Param][]float32
	step       int
}

// SGDOpt customizes an SGD optimizer at construction time.
type SGDOpt func(*SGD)

// WithMomentum enables classical momentum with coefficient m.
func WithMomentum(m float64) SGDOpt {
	return func(s *SGD) { s.momentum = m }
}

// WithWeightDecay enables L2 weight decay with coefficient wd.
func WithWeightDecay(wd float64) SGDOpt {
	return func(s *SGD) { s.weightDecay = wd }
}

// WithSchedule attaches a learning-rate schedule; the base learning rate is
// multiplied by the schedule value at each step.
func WithSchedule(sched Schedule) SGDOpt {
	return func(s *SGD) { s.schedule = sched }
}

// NewSGD constructs an SGD optimizer with base learning rate lr.
func NewSGD(lr float64, opts ...SGDOpt) *SGD {
	s := &SGD{lr: lr, schedule: Constant()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// LR returns the effective learning rate at the current step.
func (s *SGD) LR() float64 { return s.lr * s.schedule(s.step) }

// Step applies one update to every optimizer-visible parameter using the
// gradients accumulated since the last ZeroGrad, then advances the step
// counter. Parameters of both widths may appear in one call; each updates
// at its own storage width.
func (s *SGD) Step(params []*nn.Param) {
	lr := s.LR()
	for _, p := range params {
		if p.NoOpt {
			continue
		}
		if p.Value.DType() == tensor.Float32 {
			var vel []float32
			if s.momentum != 0 {
				if s.velocity32 == nil {
					s.velocity32 = make(map[*nn.Param][]float32)
				}
				var ok bool
				if vel, ok = s.velocity32[p]; !ok {
					vel = make([]float32, p.Value.Len())
					s.velocity32[p] = vel
				}
			}
			sgdUpdate(tensor.DataOf[float32](p.Value), tensor.DataOf[float32](p.Grad), vel,
				float32(lr), float32(s.momentum), float32(s.weightDecay)) //lint:allow precision -- optimizer scalars round once per step at the dispatch boundary
			continue
		}
		var vel []float64
		if s.momentum != 0 {
			if s.velocity == nil {
				s.velocity = make(map[*nn.Param][]float64)
			}
			var ok bool
			if vel, ok = s.velocity[p]; !ok {
				vel = make([]float64, p.Value.Len())
				s.velocity[p] = vel
			}
		}
		sgdUpdate(tensor.DataOf[float64](p.Value), tensor.DataOf[float64](p.Grad), vel,
			lr, s.momentum, s.weightDecay)
	}
	s.step++
}

// sgdUpdate applies the storage-width SGD update to one parameter. vel is
// nil when momentum is zero.
func sgdUpdate[E tensor.Elem](v, g, vel []E, lr, momentum, weightDecay E) {
	if weightDecay != 0 {
		for i := range g {
			g[i] += weightDecay * v[i]
		}
	}
	if momentum != 0 {
		for i := range v {
			vel[i] = momentum*vel[i] + g[i]
			v[i] -= lr * vel[i]
		}
	} else {
		for i := range v {
			v[i] -= lr * g[i]
		}
	}
}

// Schedule maps a step index to a multiplier on the base learning rate.
type Schedule func(step int) float64

// Constant returns the identity schedule.
func Constant() Schedule {
	return func(int) float64 { return 1 }
}

// StepDecay multiplies the rate by factor every interval steps.
func StepDecay(interval int, factor float64) Schedule {
	return func(step int) float64 {
		m := 1.0
		for s := interval; s <= step; s += interval {
			m *= factor
		}
		return m
	}
}

// InverseSqrt implements the 1/√(1+step/warm) schedule satisfying the
// divergent-sum / vanishing-ratio conditions of Theorem 1 (Eq. 13).
func InverseSqrt(warm int) Schedule {
	if warm <= 0 {
		warm = 1
	}
	return func(step int) float64 {
		return 1.0 / math.Sqrt(1+float64(step)/float64(warm))
	}
}
