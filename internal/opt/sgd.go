// Package opt implements the optimizers and learning-rate schedules used by
// federated clients: SGD with momentum and weight decay (the paper's
// optimizer) and the schedules its convergence analysis admits.
package opt

import (
	"math"

	"fedsu/internal/nn"
)

// SGD is stochastic gradient descent with optional momentum and decoupled
// L2 weight decay, matching the paper's training setup (SGD, weight decay
// 0.001).
type SGD struct {
	lr          float64
	momentum    float64
	weightDecay float64
	schedule    Schedule

	velocity map[*nn.Param][]float64
	step     int
}

// SGDOpt customizes an SGD optimizer at construction time.
type SGDOpt func(*SGD)

// WithMomentum enables classical momentum with coefficient m.
func WithMomentum(m float64) SGDOpt {
	return func(s *SGD) { s.momentum = m }
}

// WithWeightDecay enables L2 weight decay with coefficient wd.
func WithWeightDecay(wd float64) SGDOpt {
	return func(s *SGD) { s.weightDecay = wd }
}

// WithSchedule attaches a learning-rate schedule; the base learning rate is
// multiplied by the schedule value at each step.
func WithSchedule(sched Schedule) SGDOpt {
	return func(s *SGD) { s.schedule = sched }
}

// NewSGD constructs an SGD optimizer with base learning rate lr.
func NewSGD(lr float64, opts ...SGDOpt) *SGD {
	s := &SGD{lr: lr, schedule: Constant()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// LR returns the effective learning rate at the current step.
func (s *SGD) LR() float64 { return s.lr * s.schedule(s.step) }

// Step applies one update to every optimizer-visible parameter using the
// gradients accumulated since the last ZeroGrad, then advances the step
// counter.
func (s *SGD) Step(params []*nn.Param) {
	lr := s.LR()
	for _, p := range params {
		if p.NoOpt {
			continue
		}
		v := p.Value.Data()
		g := p.Grad.Data()
		if s.weightDecay != 0 {
			for i := range g {
				g[i] += s.weightDecay * v[i]
			}
		}
		if s.momentum != 0 {
			if s.velocity == nil {
				s.velocity = make(map[*nn.Param][]float64)
			}
			vel, ok := s.velocity[p]
			if !ok {
				vel = make([]float64, len(v))
				s.velocity[p] = vel
			}
			for i := range v {
				vel[i] = s.momentum*vel[i] + g[i]
				v[i] -= lr * vel[i]
			}
		} else {
			for i := range v {
				v[i] -= lr * g[i]
			}
		}
	}
	s.step++
}

// Schedule maps a step index to a multiplier on the base learning rate.
type Schedule func(step int) float64

// Constant returns the identity schedule.
func Constant() Schedule {
	return func(int) float64 { return 1 }
}

// StepDecay multiplies the rate by factor every interval steps.
func StepDecay(interval int, factor float64) Schedule {
	return func(step int) float64 {
		m := 1.0
		for s := interval; s <= step; s += interval {
			m *= factor
		}
		return m
	}
}

// InverseSqrt implements the 1/√(1+step/warm) schedule satisfying the
// divergent-sum / vanishing-ratio conditions of Theorem 1 (Eq. 13).
func InverseSqrt(warm int) Schedule {
	if warm <= 0 {
		warm = 1
	}
	return func(step int) float64 {
		return 1.0 / math.Sqrt(1+float64(step)/float64(warm))
	}
}
