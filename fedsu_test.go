package fedsu

import (
	"context"
	"sync"
	"testing"
)

func TestPublicManagerStandalone(t *testing.T) {
	agg := meanAgg{n: 1}
	mgr, err := NewManager(0, 3, &agg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		local := []float64{float64(k), 0.5 * float64(k), -1}
		out, tr, err := mgr.Sync(k, local, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 3 {
			t.Fatalf("round %d: out len %d", k, len(out))
		}
		if tr.TotalParams != 3 {
			t.Fatalf("round %d: traffic %+v", k, tr)
		}
	}
	if mgr.PredictableCount() == 0 {
		t.Error("linear parameters should become predictable through the public API")
	}
}

// meanAgg is a trivial single-client aggregator for the facade test.
type meanAgg struct{ n int }

func (m *meanAgg) AggregateModel(_, _ int, v []float64) ([]float64, error) { return v, nil }
func (m *meanAgg) AggregateError(_, _ int, v []float64) ([]float64, error) { return v, nil }

func TestPublicBaselines(t *testing.T) {
	agg := &meanAgg{n: 1}
	for _, s := range []Syncer{
		NewFedAvg(0, 2, agg),
		NewCMFL(0, 2, agg, 0.8),
		NewAPF(0, 2, agg, 0.05),
	} {
		if _, _, err := s.Sync(0, []float64{1, 2}, true); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSimulationEndToEnd(t *testing.T) {
	sim, err := NewSimulation(SimulationConfig{
		Workload: "cnn", Scheme: "fedsu",
		Clients: 3, Rounds: 6, LocalIters: 2, BatchSize: 4,
		Samples: 128, ModelScale: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("stats = %d rounds", len(stats))
	}
	if stats[len(stats)-1].SimTime <= 0 {
		t.Error("emulated time must advance")
	}
}

func TestSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(SimulationConfig{Workload: "nope", Scheme: "fedsu"}); err == nil {
		t.Error("unknown workload must fail")
	}
	if _, err := NewSimulation(SimulationConfig{Workload: "cnn", Scheme: "nope"}); err == nil {
		t.Error("unknown scheme must fail")
	}
}

func TestNamesExposed(t *testing.T) {
	if len(StrategyNames()) != 7 {
		t.Errorf("StrategyNames = %v", StrategyNames())
	}
	if len(WorkloadNames()) != 4 {
		t.Errorf("WorkloadNames = %v", WorkloadNames())
	}
}

func TestCoordinatorRoundTrip(t *testing.T) {
	l, err := StartCoordinator("127.0.0.1:0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	a, err := DialCoordinator(l.Addr().String(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialCoordinator(l.Addr().String(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Two managers over real TCP behave like one fleet.
	ma, err := NewManager(a.ClientID(), 2, a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewManager(b.ClientID(), 2, b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		var wg sync.WaitGroup
		var oa, ob []float64
		wg.Add(2)
		go func() {
			defer wg.Done()
			oa, _, _ = ma.Sync(k, []float64{float64(k), 1}, true)
		}()
		go func() {
			defer wg.Done()
			ob, _, _ = mb.Sync(k, []float64{float64(k) + 2, 3}, true)
		}()
		wg.Wait()
		if oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("round %d: fleets disagree: %v vs %v", k, oa, ob)
		}
	}
}
