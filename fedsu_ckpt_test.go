package fedsu

import (
	"context"
	"path/filepath"
	"testing"
)

func TestSimulationCheckpointRoundTrip(t *testing.T) {
	mk := func() *Simulation {
		sim, err := NewSimulation(SimulationConfig{
			Workload: "cnn", Scheme: "fedsu",
			Clients: 3, Rounds: 4, LocalIters: 2, BatchSize: 4,
			Samples: 128, ModelScale: 32, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}

	sim := mk()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := sim.RunRound(ctx, false); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := sim.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	want := sim.Engine().GlobalVector()

	// A brand-new simulation resumes from the checkpoint.
	fresh := mk()
	if err := fresh.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	got := fresh.Engine().GlobalVector()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored model differs at param %d", i)
		}
	}
	if _, err := fresh.RunRound(ctx, true); err != nil {
		t.Fatalf("resumed round: %v", err)
	}

	// Mismatched scheme must be rejected.
	other, err := NewSimulation(SimulationConfig{
		Workload: "cnn", Scheme: "fedavg",
		Clients: 3, Rounds: 1, Samples: 128, ModelScale: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadCheckpoint(path); err == nil {
		t.Error("loading a fedsu checkpoint into a fedavg simulation must fail")
	}
}
