package fedsu_test

import (
	"fmt"

	"fedsu"
)

// passthroughAgg treats a single client as the whole fleet: the mean over
// one contributor is the contribution itself.
type passthroughAgg struct{}

func (passthroughAgg) AggregateModel(_, _ int, v []float64) ([]float64, error) { return v, nil }
func (passthroughAgg) AggregateError(_, _ int, v []float64) ([]float64, error) { return v, nil }

// ExampleNewManager shows the standalone FedSU manager diagnosing a
// linearly-evolving parameter and switching it to speculative updating.
func ExampleNewManager() {
	mgr, err := fedsu.NewManager(0, 2, passthroughAgg{}, fedsu.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for round := 0; round < 10; round++ {
		// Parameter 0 moves linearly (slope 0.5); parameter 1 alternates.
		local := []float64{0.5 * float64(round+1), float64(round%2*2 - 1)}
		if _, _, err := mgr.Sync(round, local, true); err != nil {
			panic(err)
		}
	}
	mask := mgr.PredictableMask()
	fmt.Printf("linear parameter predictable: %v\n", mask[0])
	fmt.Printf("oscillating parameter predictable: %v\n", mask[1])
	// Output:
	// linear parameter predictable: true
	// oscillating parameter predictable: false
}

// ExampleTraffic shows the byte-level savings accounting: a round that
// shipped a dense 100-value message each way is measured against the full
// 400-parameter model's wire cost.
func ExampleTraffic() {
	quarter := make([]float64, 100)
	for i := range quarter {
		quarter[i] = 1
	}
	tr := fedsu.Traffic{
		UpBytes:      fedsu.MessageBytes(quarter),
		DownBytes:    fedsu.MessageBytes(quarter),
		SyncedParams: 100,
		TotalParams:  400,
	}
	fmt.Printf("sparsification ratio: %.2f\n", tr.SparsificationRatio())
	// Output:
	// sparsification ratio: 0.72
}
