# Tier-1 verification and developer loops. `make verify` is the full
# pre-merge gate: build + tests (shuffled, so order-dependent tests cannot
# hide), static vetting, fedsu-lint, the race detector over every package,
# and a short fuzz smoke over the wire codecs.

GO ?= go
FUZZTIME ?= 10s

.PHONY: tier1 vet lint race fuzz verify bench bench-agg

tier1:
	$(GO) build ./...
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: scratchpair, ctxdispatch, determinism,
# errwrap (see DESIGN.md §5e). Suppress a finding with
# `//lint:allow <analyzer> <reason>` on or above the offending line.
lint:
	$(GO) run ./cmd/fedsu-lint ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke over the rpc wire contract (nil-vs-abstain regression),
# the sparse mask codecs, and the self-describing vector payload flrpc
# ships. `go test -fuzz` accepts one target per invocation, hence four
# runs. Seeds live in testdata/fuzz/ and f.Add.
fuzz:
	$(GO) test -fuzz '^FuzzAggWire$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/flrpc/
	$(GO) test -fuzz '^FuzzBitmapPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/
	$(GO) test -fuzz '^FuzzIndexPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/
	$(GO) test -fuzz '^FuzzVectorPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/

verify: tier1 vet lint race fuzz

# Kernel and layer microbenchmarks (see BENCH_kernels.json for the tracked
# before/after numbers).
bench:
	$(GO) test ./internal/tensor/ ./internal/nn/ -run xxx -bench . -benchmem

# Aggregation hot-loop benchmarks (see BENCH_agg.json for the tracked
# before/after numbers): the fl.Server streaming collective fold and the
# pooled sparse vector wire codec. Take the median of the 3 counts.
bench-agg:
	$(GO) test ./internal/fl/ -run xxx -bench '^BenchmarkAggregate' -benchmem -count 3
	$(GO) test ./internal/sparse/ -run xxx -bench '^BenchmarkVectorPayload$$' -benchmem
