# Tier-1 verification and developer loops. `make verify` is the full
# pre-merge gate: build + tests, static vetting, and the race detector over
# the packages with real concurrency (the worker-pool kernels, the
# federated engine's per-client goroutines, and the TCP coordinator).

GO ?= go

.PHONY: tier1 vet race verify bench

tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/fl/... ./internal/flrpc/...

verify: tier1 vet race

# Kernel and layer microbenchmarks (see BENCH_kernels.json for the tracked
# before/after numbers).
bench:
	$(GO) test ./internal/tensor/ ./internal/nn/ -run xxx -bench . -benchmem
