# Tier-1 verification and developer loops. `make verify` is the full
# pre-merge gate: build + tests (shuffled, so order-dependent tests cannot
# hide), static vetting, fedsu-lint, the race detector over every package,
# and a short fuzz smoke over the wire codecs.

GO ?= go
FUZZTIME ?= 10s

.PHONY: tier1 vet lint race fuzz verify bench bench-agg bench-grid \
	bench-tree bench-codec tier1-f32 race-f32 verify-f32

tier1:
	$(GO) build ./...
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the syntactic/type-based checks
# (scratchpair, ctxdispatch, determinism, errwrap, precision; DESIGN.md
# §5e) plus the CFG/dataflow concurrency-discipline checks (lockhold,
# goleak, tokenpair, sharedmut; DESIGN.md §5j). Suppress a finding with
# `//lint:allow <analyzer> -- <reason>` on or above the offending line;
# the ` -- reason` part is mandatory.
lint:
	$(GO) run ./cmd/fedsu-lint ./...

# `./...` keeps both lanes current as packages grow: tier1 picks up the
# async-mode suites (fl server/engine async, netem arrival processes,
# flrpc async wire) automatically, and the race lane hammers the
# deadline-expiry-vs-completion path, the async submit/apply interleaving
# (fl TestAsyncSubmitApplyRace, which also proves handed-out globals stay
# immutable), and the internal/exp grid scheduler under the detector.
race:
	$(GO) test -race ./...

# Float32 compute lane: the same tier-1 and race gates with the experiment
# suite's test helpers switched to the float32 kernel instantiation
# (FEDSU_DTYPE is read only by _test.go helpers, never by library code).
# The grid bit-identity proofs then run against the float32 path, with the
# FedSU managers in Quantize mode.
tier1-f32:
	$(GO) build ./...
	FEDSU_DTYPE=float32 $(GO) test -shuffle=on ./...

race-f32:
	FEDSU_DTYPE=float32 $(GO) test -race ./...

verify-f32: tier1-f32 race-f32

# Short fuzz smoke over the rpc wire contract (nil-vs-abstain regression),
# the sparse mask codecs, the self-describing vector payload flrpc ships,
# and the tier partial-aggregate message. `go test -fuzz` accepts one
# target per invocation, hence five runs. Seeds live in testdata/fuzz/
# and f.Add.
fuzz:
	$(GO) test -fuzz '^FuzzAggWire$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/flrpc/
	$(GO) test -fuzz '^FuzzBitmapPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/
	$(GO) test -fuzz '^FuzzIndexPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/
	$(GO) test -fuzz '^FuzzVectorPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/
	$(GO) test -fuzz '^FuzzPartialPayload$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/
	$(GO) test -fuzz '^FuzzQuantStage$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/codec/
	$(GO) test -fuzz '^FuzzLowRankStage$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/codec/
	$(GO) test -fuzz '^FuzzEntropyStage$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/codec/
	$(GO) test -fuzz '^FuzzChainRoundTrip$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sparse/codec/

verify: tier1 vet lint race fuzz

# Kernel and layer microbenchmarks (see BENCH_kernels.json for the tracked
# before/after numbers).
bench:
	$(GO) test ./internal/tensor/ ./internal/nn/ -run xxx -bench . -benchmem

# Aggregation hot-loop benchmarks (see BENCH_agg.json for the tracked
# before/after numbers): the fl.Server streaming collective fold and the
# pooled sparse vector wire codec. Take the median of the 3 counts.
bench-agg:
	$(GO) test ./internal/fl/ -run xxx -bench '^BenchmarkAggregate' -benchmem -count 3
	$(GO) test ./internal/sparse/ -run xxx -bench '^BenchmarkVectorPayload$$' -benchmem

# Hierarchical-aggregation benchmark (see BENCH_tree.json for the tracked
# medians): the root's per-round workload flat vs tree at equal
# participants — 1000-member cohort from 100k registered, fanout 8/32.
# Take the median of the 3 counts.
bench-tree:
	$(GO) test ./internal/fl/ -run xxx -bench '^BenchmarkTreeRootFold' -benchmem -count 3

# Compression-chain stage benchmarks (see BENCH_codec.json for the
# tracked medians): per-stage encode ns/op, B/op, and encoded bytes at
# densities 0.1%, 1%, 10%, and dense. Take the median of the 3 counts.
bench-codec:
	$(GO) test ./internal/sparse/codec/ -run xxx -bench '^BenchmarkChain' -benchmem -count 3

# End-to-end harness benchmark: the Table I grid, sequential-uncached vs
# parallel-cached (the grid scheduler of internal/exp), medians over
# GRIDREPS reps per arm. Writes the measurement document to
# BENCH_grid.json (the tracked copy records the reference host). Tune with
# e.g. GRIDFLAGS='-rounds 12' for a shorter advisory run.
GRIDREPS ?= 3
GRIDSLOTS ?= 4
GRIDFLAGS ?=
bench-grid:
	$(GO) run ./cmd/fedsu-bench -exp table1 -scale fast -parallel $(GRIDSLOTS) \
		-gridbench $(GRIDREPS) $(GRIDFLAGS) > BENCH_grid.json
	@cat BENCH_grid.json
