module fedsu

go 1.22
