// Package fedsu is a Go implementation of FedSU — Federated Learning with
// Speculative Updating (Yu et al., ICDCS 2025) — together with the complete
// substrate needed to train, emulate, and evaluate it: a pure-Go neural
// network stack, synthetic federated datasets with Dirichlet non-IID
// partitioning, a bandwidth-emulated cluster, the CMFL and APF baseline
// sparsifiers, and a TCP deployment mode.
//
// # Three ways in
//
// Standalone manager — wire FedSU into your own federated system by giving
// each client a Manager and implementing Aggregator over your transport:
//
//	mgr, _ := fedsu.NewManager(clientID, modelSize, myAggregator, fedsu.DefaultOptions())
//	newParams, traffic, _ := mgr.Sync(round, localParams, true)
//
// Emulated simulation — reproduce the paper's experiments end to end:
//
//	sim, _ := fedsu.NewSimulation(fedsu.SimulationConfig{
//		Workload: "cnn", Scheme: "fedsu", Clients: 16, Rounds: 100,
//	})
//	stats, _ := sim.Run(context.Background())
//
// Real network — run the coordinator and clients as separate processes with
// StartCoordinator and DialCoordinator (see cmd/fedsu-server and
// cmd/fedsu-client).
package fedsu

import (
	"context"

	"fedsu/internal/ckpt"
	"fedsu/internal/core"
	"fedsu/internal/exp"
	"fedsu/internal/fl"
	"fedsu/internal/flrpc"
	"fedsu/internal/netem"
	"fedsu/internal/nn"
	"fedsu/internal/sparse"
	"fedsu/internal/tensor"
)

// Options configures the FedSU algorithm (thresholds T_ℛ and T_𝒮, EMA decay
// θ, and the ablation variant).
type Options = core.Options

// Variant selects full FedSU or one of the paper's ablation variants.
type Variant = core.Variant

// Algorithm variants (Fig. 8 of the paper).
const (
	VariantFull = core.VariantFull
	VariantV1   = core.VariantV1
	VariantV2   = core.VariantV2
)

// DefaultOptions returns the paper's evaluation configuration
// (T_ℛ = 0.01, T_𝒮 = 1.0, θ = 0.9).
func DefaultOptions() Options { return core.DefaultOptions() }

// Manager is the per-client FedSU state machine: it maintains the
// predictability mask, performs speculative updating, and runs the
// error-feedback protocol.
type Manager = core.Manager

// ManagerState is a portable snapshot of a Manager, used to bring
// dynamically-joining clients up to date.
type ManagerState = core.State

// NewManager builds a FedSU manager for a model with size scalar
// parameters, using agg for the global collectives.
func NewManager(clientID, size int, agg Aggregator, opts Options) (*Manager, error) {
	return core.NewManager(clientID, size, agg, opts)
}

// Aggregator is the server-side collective interface a FedSU deployment
// must provide (element-wise averaging of model values and prediction
// errors).
type Aggregator = sparse.Aggregator

// Syncer is the common interface of all synchronization strategies (FedSU
// and the baselines).
type Syncer = sparse.Syncer

// Traffic accounts one client's communication during one synchronization.
type Traffic = sparse.Traffic

// MessageBytes is the actual wire cost of one collective message carrying
// vec under the binary vector codec (framing plus exact encoded payload);
// nil — an abstention — costs the framing header alone. Strategies charge
// their Traffic with this.
func MessageBytes(vec []float64) int { return sparse.MessageBytes(vec) }

// DenseMessageBytes is MessageBytes for a fully-dense n-parameter vector,
// the full-model reference cost SparsificationRatio measures savings
// against.
func DenseMessageBytes(n int) int { return sparse.DenseMessageBytes(n) }

// NewFedAvg, NewCMFL, and NewAPF expose the baseline strategies for
// side-by-side deployments.
func NewFedAvg(clientID, size int, agg Aggregator) Syncer {
	return sparse.NewFedAvg(clientID, size, agg)
}

// NewCMFL constructs the CMFL baseline with the given relevance threshold
// (the paper uses 0.8).
func NewCMFL(clientID, size int, agg Aggregator, relevance float64) Syncer {
	return sparse.NewCMFL(clientID, size, agg, relevance)
}

// NewAPF constructs the APF baseline with the given stability threshold
// (the paper uses 0.05).
func NewAPF(clientID, size int, agg Aggregator, stability float64) Syncer {
	return sparse.NewAPF(clientID, size, agg, stability)
}

// NewQSGD constructs the quantization baseline with the given bit width
// (2..16), the compression family the paper's related work contrasts
// sparsification against.
func NewQSGD(clientID, size int, agg Aggregator, bits int, seed int64) (Syncer, error) {
	return sparse.NewQSGD(clientID, size, agg, bits, seed)
}

// RoundStats reports one round of an emulated run.
type RoundStats = fl.RoundStats

// AsyncConfig parameterizes buffered-async aggregation: the buffer size K,
// the staleness bound (in global versions, never wall-clock), and the
// per-version weight decay.
type AsyncConfig = fl.AsyncConfig

// SimulationConfig describes an emulated federated run over one of the
// paper's workloads.
type SimulationConfig struct {
	// Workload selects the model/dataset pair: "cnn" (EMNIST), "resnet18"
	// (FMNIST), or "densenet121" (CIFAR-10).
	Workload string
	// Scheme selects the synchronization strategy: "fedsu", "fedsu-v1",
	// "fedsu-v2", "apf", "cmfl", or "fedavg".
	Scheme string
	// Clients is the number of emulated devices.
	Clients int
	// Rounds is the training length.
	Rounds int
	// LocalIters and BatchSize set the local-training loop (paper: 50/32).
	LocalIters, BatchSize int
	// Samples is the synthetic dataset size.
	Samples int
	// ModelScale divides model widths (1 = paper scale; larger = faster).
	ModelScale int
	// EvalEvery evaluates the global model every n rounds (default 2).
	EvalEvery int
	// Seed makes the run reproducible.
	Seed int64
	// FedSU overrides the algorithm options; zero value means
	// DefaultOptions.
	FedSU Options
	// Netem overrides the cluster timing model; zero value uses the
	// paper's testbed parameters (13.7 Mbps clients, 70 % participation).
	Netem netem.Config
	// ProxMu adds a FedProx proximal term to the local objective (zero,
	// the paper's setup, disables it).
	ProxMu float64
	// Async switches the run to buffered-async rounds (Async.K >= 1):
	// clients become independent arrival processes and the global applies
	// every K contributions with staleness-weighted averaging. Rounds then
	// counts global applications. Requires a full-vector scheme
	// (fedavg/cmfl/qsgd). Zero keeps synchronous barriers.
	Async AsyncConfig
	// EventThreshold enables event-triggered uploads: a client offers a
	// contribution only when the L2 norm of its change since its last
	// offer crosses the threshold, abstaining with header-only traffic
	// otherwise. Zero disables gating.
	EventThreshold float64
	// DType selects the compute precision: "float64" (or empty — the
	// historical default, bit-identical results) or "float32" (half the
	// memory bandwidth and a lossless wire). Aliases "f64"/"f32" are
	// accepted.
	DType string
	// Compress selects the wire compression chain for collective payloads
	// as a codec chain spec (e.g. "topk,q4,rans"): chained sparsify →
	// quantize → entropy-code stages, with traffic charged at the chain's
	// measured sizes. Empty keeps the default wire, byte-identical to every
	// pre-chain run. Requires float64 compute (the chain's wire images are
	// not float32-exact).
	Compress string
	// Population enables population-scale cohort rounds: Population
	// registered devices, with a Clients-sized cohort sampled each round
	// (deterministic in (Seed, round)) and timed by the population-scale
	// network model. Zero keeps classic fixed-fleet rounds.
	Population int
	// Fanout >= 2 folds population rounds through the hierarchical
	// aggregation tree (bit-identical global, O(fanout) root work); zero
	// keeps the flat collective. Requires Population.
	Fanout int
}

// Simulation is a configured emulated run.
type Simulation struct {
	engine   *fl.Engine
	rounds   int
	evalEv   int
	workload string
}

// NewSimulation assembles an emulated run.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	w, err := exp.WorkloadByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 50
	}
	if cfg.LocalIters <= 0 {
		cfg.LocalIters = 5
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 1024
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 2
	}
	if cfg.FedSU == (Options{}) {
		cfg.FedSU = DefaultOptions()
	}
	dt, err := tensor.ParseDType(cfg.DType)
	if err != nil {
		return nil, err
	}
	if dt == tensor.Float32 {
		// Keep the FedSU state machine in the wire image the float32
		// clients actually store (see core.Options.Quantize).
		cfg.FedSU.Quantize = true
	}
	factory, err := fl.StrategyFactoryWith(cfg.Scheme, cfg.FedSU)
	if err != nil {
		return nil, err
	}
	flCfg := fl.Config{
		NumClients:     cfg.Clients,
		LocalIters:     cfg.LocalIters,
		BatchSize:      cfg.BatchSize,
		LR:             w.EffectiveLR(),
		WeightDecay:    0.001,
		DirichletAlpha: 1.0,
		EvalSamples:    256,
		EvalBatch:      64,
		Seed:           cfg.Seed,
		Netem:          cfg.Netem,
		WireParams:     w.WireParams,
		ProxMu:         cfg.ProxMu,
		DType:          dt,
		Async:          cfg.Async,
		EventThreshold: cfg.EventThreshold,
		Compress:       cfg.Compress,
		Population:     cfg.Population,
		Fanout:         cfg.Fanout,
	}
	ds := w.Dataset(cfg.Samples, cfg.Seed+31)
	builder := func() *nn.Model { return w.ModelOf(dt, w.EffectiveScale(cfg.ModelScale), cfg.Seed+97) }
	engine, err := fl.NewEngine(flCfg, builder, ds, factory)
	if err != nil {
		return nil, err
	}
	return &Simulation{engine: engine, rounds: cfg.Rounds, evalEv: cfg.EvalEvery, workload: w.Name}, nil
}

// SaveCheckpoint persists the simulation's resumable state (global model,
// round counter, and FedSU mask state) atomically to path.
func (s *Simulation) SaveCheckpoint(path string) error {
	c := s.engine.Checkpoint()
	c.Workload = s.workload
	return ckpt.Save(path, c)
}

// LoadCheckpoint restores a previously-saved checkpoint; the workload and
// scheme must match this simulation's configuration.
func (s *Simulation) LoadCheckpoint(path string) error {
	c, err := ckpt.Load(path, s.workload, s.engine.Strategy())
	if err != nil {
		return err
	}
	return s.engine.Restore(c)
}

// Run executes the configured rounds and returns per-round statistics.
func (s *Simulation) Run(ctx context.Context) ([]RoundStats, error) {
	return s.engine.Run(ctx, s.rounds, s.evalEv)
}

// RunRound executes a single round (evaluating the global model when
// evaluate is set), for callers that drive training incrementally.
func (s *Simulation) RunRound(ctx context.Context, evaluate bool) (RoundStats, error) {
	return s.engine.RunRound(ctx, evaluate)
}

// Engine exposes the underlying engine for advanced use (client
// join/leave, model inspection).
func (s *Simulation) Engine() *fl.Engine { return s.engine }

// Join admits a new client mid-run with a fresh shard of n dataset samples,
// exercising the paper's dynamicity handling: the joiner receives the
// latest model plus (under FedSU) the predictability-mask and no-checking
// state.
func (s *Simulation) Join(n int, seed int64) error {
	_, err := s.engine.AddClientFromDataset(n, seed)
	return err
}

// Leave removes the client with the given id between rounds.
func (s *Simulation) Leave(id int) error { return s.engine.RemoveClient(id) }

// Evaluate scores the current global model on the held-out set.
func (s *Simulation) Evaluate() (accuracy, loss float64) { return s.engine.EvaluateGlobal() }

// NetworkConfig describes the emulated cluster (bandwidths, latency,
// participation fraction, compute heterogeneity).
type NetworkConfig = netem.Config

// DefaultNetworkConfig returns the paper's testbed parameters: 13.7 Mbps
// client links, a 10 Gbps server, and a 70 % participation quorum.
func DefaultNetworkConfig(clients int) NetworkConfig { return netem.DefaultConfig(clients) }

// StrategyNames lists the recognized scheme names.
func StrategyNames() []string { return fl.StrategyNames() }

// ErrEvicted reports that the coordinator evicted this client after a
// missed collective deadline; match with errors.Is.
var ErrEvicted = fl.ErrEvicted

// CoordinatorConfig tunes the TCP coordinator's fault tolerance (barrier
// deadline, heartbeat grace window).
type CoordinatorConfig = flrpc.Config

// CoordinatorService is a running coordinator: a net.Listener plus the
// serve loop's terminal error (Err/Done).
type CoordinatorService = flrpc.Service

// ClientConfig tunes the TCP client's fault tolerance (retry budget,
// backoff, heartbeat interval).
type ClientConfig = flrpc.DialConfig

// StartCoordinator launches the TCP aggregation coordinator for a fleet of
// numClients training a model of modelSize parameters, with fault
// tolerance disabled (blocking barriers). Close the returned service to
// stop it.
func StartCoordinator(addr string, numClients, modelSize int) (*CoordinatorService, error) {
	return StartCoordinatorWith(addr, CoordinatorConfig{NumClients: numClients, ModelSize: modelSize})
}

// StartCoordinatorWith launches the TCP coordinator with explicit fault
// tolerance: a positive Deadline bounds every aggregation barrier, evicting
// clients that miss it so one crash cannot wedge the session.
func StartCoordinatorWith(addr string, cfg CoordinatorConfig) (*CoordinatorService, error) {
	c, err := flrpc.NewCoordinatorWith(cfg)
	if err != nil {
		return nil, err
	}
	return flrpc.Listen(addr, c)
}

// DialCoordinator joins a TCP session and returns an Aggregator usable with
// NewManager (or any baseline strategy).
func DialCoordinator(addr, name string) (*flrpc.Client, error) {
	return flrpc.Dial(addr, name)
}

// DialCoordinatorWith joins a TCP session with explicit fault-tolerance
// settings (retry/backoff budget, reconnect, heartbeats).
func DialCoordinatorWith(addr string, cfg ClientConfig) (*flrpc.Client, error) {
	return flrpc.DialWith(addr, cfg)
}

// Workload names accepted by SimulationConfig.
func WorkloadNames() []string {
	names := make([]string, 0, 4)
	for _, w := range exp.AllWorkloads() {
		names = append(names, w.Name)
	}
	return names
}
