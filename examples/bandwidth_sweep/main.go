// Bandwidth sweep: how FedSU's advantage scales with link capacity.
//
// Sweeps the emulated client bandwidth from cellular-poor to broadband and
// reports the per-round time of FedSU vs FedAvg at each point. The paper's
// premise — communication dominates FL round time on Mbps-class links — is
// visible directly: the slower the link, the larger FedSU's win.
//
//	go run ./examples/bandwidth_sweep
package main

import (
	"context"
	"fmt"
	"os"

	"fedsu"
)

func main() {
	const clients = 6
	bandwidths := []float64{5, 13.7, 50, 200} // Mbps; 13.7 is the paper's setting

	fmt.Printf("%-12s %-16s %-16s %-10s\n",
		"link (Mbps)", "FedAvg s/round", "FedSU s/round", "speedup")
	for _, mbps := range bandwidths {
		perRound := map[string]float64{}
		for _, scheme := range []string{"fedavg", "fedsu"} {
			net := fedsu.DefaultNetworkConfig(clients)
			net.ClientUplinkMbps = mbps
			net.ClientDownlinkMbps = mbps
			sim, err := fedsu.NewSimulation(fedsu.SimulationConfig{
				Workload: "cnn", Scheme: scheme,
				Clients: clients, Rounds: 40,
				LocalIters: 4, BatchSize: 8,
				Samples: 512, ModelScale: 16,
				Seed: 3, Netem: net,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			stats, err := sim.Run(context.Background())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			last := stats[len(stats)-1]
			perRound[scheme] = last.SimTime / float64(len(stats))
		}
		fmt.Printf("%-12.1f %-16.2f %-16.2f %.1f%%\n",
			mbps, perRound["fedavg"], perRound["fedsu"],
			100*(perRound["fedavg"]-perRound["fedsu"])/perRound["fedavg"])
	}
}
