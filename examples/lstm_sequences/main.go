// LSTM sequences: the recurrent extension workload under three compression
// families.
//
// Runs the row-LSTM sequence classifier (each image row is a timestep —
// the recurrent model family CMFL evaluated) under FedSU, QSGD (8-bit
// quantization), and FedAvg, and compares accuracy against communication
// volume. Sparsification and quantization compress along different axes:
// FedSU elides whole parameters, QSGD shrinks every value.
//
//	go run ./examples/lstm_sequences
package main

import (
	"context"
	"fmt"
	"os"

	"fedsu"
)

func main() {
	fmt.Printf("%-8s %-10s %-12s %-10s\n", "scheme", "final acc", "comm (MB)", "saved")
	for _, scheme := range []string{"fedsu", "qsgd", "fedavg"} {
		sim, err := fedsu.NewSimulation(fedsu.SimulationConfig{
			Workload: "lstm", Scheme: scheme,
			Clients: 4, Rounds: 30,
			LocalIters: 5, BatchSize: 8,
			Samples: 512, Seed: 3,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stats, err := sim.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var bytes int64
		var saved float64
		finalAcc := 0.0
		for _, st := range stats {
			bytes += int64(st.Traffic.UpBytes + st.Traffic.DownBytes)
			saved += st.SparsificationRatio
			if st.Accuracy >= 0 {
				finalAcc = st.Accuracy
			}
		}
		fmt.Printf("%-8s %-10.3f %-12.2f %.1f%%\n",
			scheme, finalAcc, float64(bytes)/1e6, 100*saved/float64(len(stats)))
	}
}
