// Dynamic participation: clients join and leave a FedSU federation mid-run.
//
// The paper's Sec. V requires a joining client to download — besides the
// latest model — the predictability mask and no-checking state, so its
// future sparsification decisions match the fleet's. This example exercises
// exactly that: train, admit a new client, drop another, and verify the
// fleet keeps converging with its masks intact.
//
//	go run ./examples/dynamic_clients
package main

import (
	"context"
	"fmt"
	"os"

	"fedsu"
)

func main() {
	sim, err := fedsu.NewSimulation(fedsu.SimulationConfig{
		Workload: "cnn", Scheme: "fedsu",
		Clients: 6, Rounds: 60,
		LocalIters: 10, BatchSize: 16,
		Samples: 1024, ModelScale: 8,
		Seed: 5,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := context.Background()

	run := func(label string, rounds int) {
		for i := 0; i < rounds; i++ {
			st, err := sim.RunRound(ctx, i == rounds-1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if i == rounds-1 {
				fmt.Printf("%-22s clients=%d acc=%.3f predictable=%.1f%% sparse=%.1f%%\n",
					label, len(sim.Engine().Clients()), st.Accuracy,
					100*st.PredictableFraction, 100*st.SparsificationRatio)
			}
		}
	}

	run("warm-up (6 clients)", 20)

	// A new device joins: it receives the model + FedSU mask state.
	if err := sim.Join(96, 42); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(">> client joined with model + predictability mask + no-check state")
	run("after join (7)", 20)

	// One device drops out.
	victim := sim.Engine().Clients()[2].ID
	if err := sim.Leave(victim); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf(">> client %d left the federation\n", victim)
	run("after leave (6)", 20)

	acc, loss := sim.Evaluate()
	fmt.Printf("\nfinal: accuracy=%.3f loss=%.3f — training survived churn\n", acc, loss)
}
