// Non-IID EMNIST: the paper's CNN workload under FedSU vs FedAvg.
//
// Runs two emulated federations over the same Dirichlet(α=1) non-IID data
// and prints a side-by-side of wall-clock-to-accuracy and communication
// volume — the core claim of the paper in one terminal screen.
//
//	go run ./examples/noniid_emnist
package main

import (
	"context"
	"fmt"
	"os"

	"fedsu"
)

func main() {
	const (
		clients = 8
		rounds  = 60
		target  = 0.60 // the paper's CNN accuracy target
	)

	type outcome struct {
		scheme     string
		timeToHit  float64
		hit        bool
		finalAcc   float64
		totalBytes int64
		meanSparse float64
	}
	var results []outcome

	for _, scheme := range []string{"fedsu", "fedavg"} {
		sim, err := fedsu.NewSimulation(fedsu.SimulationConfig{
			Workload: "cnn", Scheme: scheme,
			Clients: clients, Rounds: rounds,
			LocalIters: 5, BatchSize: 8,
			Samples: 1024, ModelScale: 16,
			EvalEvery: 2, Seed: 7,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("training %s ...\n", scheme)
		stats, err := sim.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		o := outcome{scheme: scheme}
		var sparse float64
		for _, st := range stats {
			o.totalBytes += int64(st.Traffic.UpBytes + st.Traffic.DownBytes)
			sparse += st.SparsificationRatio
			if !o.hit && st.Accuracy >= target {
				o.timeToHit, o.hit = st.SimTime, true
			}
			if st.Accuracy >= 0 {
				o.finalAcc = st.Accuracy
			}
		}
		o.meanSparse = sparse / float64(len(stats))
		results = append(results, o)
	}

	fmt.Printf("\n%-8s %-14s %-10s %-12s %-10s\n",
		"scheme", "time→0.60 (s)", "final acc", "comm (MB)", "sparse")
	for _, o := range results {
		tt := "not reached"
		if o.hit {
			tt = fmt.Sprintf("%.0f", o.timeToHit)
		}
		fmt.Printf("%-8s %-14s %-10.4f %-12.1f %-10.1f%%\n",
			o.scheme, tt, o.finalAcc, float64(o.totalBytes)/1e6, 100*o.meanSparse)
	}
	if len(results) == 2 && results[0].hit && results[1].hit {
		speedup := (results[1].timeToHit - results[0].timeToHit) / results[1].timeToHit
		fmt.Printf("\nFedSU reached the target %.0f%% faster than FedAvg.\n", 100*speedup)
	}
}
