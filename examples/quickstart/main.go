// Quickstart: the FedSU manager on a two-client toy problem, using only the
// public API.
//
// Two clients jointly minimize a quadratic over a 6-dimensional parameter
// vector; their local gradients disagree (non-IID) but average to the true
// one. Watch FedSU diagnose the linearly-moving coordinates, stop
// synchronizing them, and keep the fleet byte-for-byte consistent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"fedsu"
)

// meanServer is a minimal in-process fedsu.Aggregator: a barrier that
// averages the two clients' submissions.
type meanServer struct {
	mu      sync.Mutex
	pending map[string][][]float64
	done    map[string]chan []float64
}

func newMeanServer() *meanServer {
	return &meanServer{
		pending: map[string][][]float64{},
		done:    map[string]chan []float64{},
	}
}

func (s *meanServer) aggregate(kind string, round int, values []float64) ([]float64, error) {
	key := fmt.Sprintf("%s/%d", kind, round)
	s.mu.Lock()
	ch, ok := s.done[key]
	if !ok {
		ch = make(chan []float64, 2)
		s.done[key] = ch
	}
	if values != nil {
		s.pending[key] = append(s.pending[key], values)
	}
	if len(s.pending[key]) == 2 {
		sum := make([]float64, len(values))
		for _, v := range s.pending[key] {
			for i := range sum {
				sum[i] += v[i] / 2
			}
		}
		ch <- sum
		ch <- sum
	}
	s.mu.Unlock()
	return <-ch, nil
}

func (s *meanServer) AggregateModel(_, round int, v []float64) ([]float64, error) {
	return s.aggregate("model", round, v)
}

func (s *meanServer) AggregateError(_, round int, v []float64) ([]float64, error) {
	return s.aggregate("error", round, v)
}

func main() {
	const dim = 6
	server := newMeanServer()

	managers := make([]*fedsu.Manager, 2)
	params := make([][]float64, 2)
	for c := range managers {
		m, err := fedsu.NewManager(c, dim, server, fedsu.DefaultOptions())
		if err != nil {
			panic(err)
		}
		managers[c] = m
		params[c] = make([]float64, dim) // both fleets start at zero
	}

	// Each client's local target; the global optimum is their midpoint.
	// Half the coordinates drift at a constant velocity — the optimum then
	// moves linearly and FedSU can speculate those parameters; the rest
	// stagnate, the special case APF exploits.
	base := [][]float64{
		{2, -1, 0.5, 3, -2, 1},
		{4, 1, 1.5, 3, 0, 1},
	}
	velocity := []float64{0.03, -0.02, 0.04, 0, 0, 0}
	targetAt := func(c, i, round int) float64 {
		return base[c][i] + velocity[i]*float64(round)
	}
	rngs := []*rand.Rand{rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2))}

	fmt.Println("round  predictable  synced  up-bytes")
	for round := 0; round < 80; round++ {
		var wg sync.WaitGroup
		var tr fedsu.Traffic
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Local training: a few noisy gradient steps toward the
				// client's own target.
				local := append([]float64(nil), params[c]...)
				for it := 0; it < 5; it++ {
					for i := range local {
						grad := local[i] - targetAt(c, i, round)
						local[i] -= 0.05 * (grad + 0.01*rngs[c].NormFloat64())
					}
				}
				out, t, err := managers[c].Sync(round, local, true)
				if err != nil {
					panic(err)
				}
				params[c] = out
				if c == 0 {
					tr = t
				}
			}(c)
		}
		wg.Wait()

		// The two fleets must agree exactly — FedSU's core invariant.
		for i := range params[0] {
			if params[0][i] != params[1][i] {
				panic("fleet diverged")
			}
		}
		if round%10 == 9 {
			fmt.Printf("%5d  %11d  %6d  %8d\n",
				round, managers[0].PredictableCount(), tr.SyncedParams, tr.UpBytes)
		}
	}

	fmt.Printf("\nfinal parameters: %.3f\n", params[0])
	fmt.Println("(the optimum is the midpoint of the two drifting targets)")
	fmt.Printf("linear-time fractions per parameter: %.2f\n", managers[0].LinearFractions())
	fmt.Println("(drifting coordinates 0-2 and stagnating ones 3-5 both speculate;")
	fmt.Println(" stagnation is the slope-zero special case of the linear pattern)")
}
