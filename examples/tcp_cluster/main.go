// TCP cluster: a real-network FedSU federation in one process.
//
// Starts the TCP coordinator, dials three clients over loopback, and runs a
// distributed optimization where every synchronization decision — masks,
// speculative updates, error feedback — travels over real sockets. In
// production the coordinator and each client would be separate processes
// (see cmd/fedsu-server and cmd/fedsu-client); the protocol is identical.
//
//	go run ./examples/tcp_cluster
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"fedsu"
)

const (
	numClients = 3
	dim        = 16
	rounds     = 40
)

func main() {
	l, err := fedsu.StartCoordinator("127.0.0.1:0", numClients, dim)
	if err != nil {
		fail(err)
	}
	defer l.Close()
	fmt.Printf("coordinator listening on %s\n", l.Addr())

	var wg sync.WaitGroup
	finals := make([][]float64, numClients)
	specRounds := make([]int, numClients)
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			finals[c], specRounds[c] = runClient(l.Addr().String(), c)
		}(c)
	}
	wg.Wait()

	// All clients must hold the identical model after the last round.
	for c := 1; c < numClients; c++ {
		for i := range finals[0] {
			if finals[0][i] != finals[c][i] {
				fail(fmt.Errorf("client %d diverged at parameter %d", c, i))
			}
		}
	}
	fmt.Printf("\nall %d clients hold identical models after %d rounds over TCP\n",
		numClients, rounds)
	fmt.Printf("speculative parameter-rounds per client: %v\n", specRounds)
}

// runClient joins the session and trains a toy model: each client pulls the
// shared parameters toward its private target (non-IID), with the global
// optimum at the targets' mean; several coordinates drift linearly so FedSU
// has something to speculate on.
func runClient(addr string, idx int) (final []float64, specTotal int) {
	conn, err := fedsu.DialCoordinator(addr, fmt.Sprintf("worker-%d", idx))
	if err != nil {
		fail(err)
	}
	defer conn.Close()
	id := conn.ClientID()

	mgr, err := fedsu.NewManager(id, dim, conn, fedsu.DefaultOptions())
	if err != nil {
		fail(err)
	}
	rng := rand.New(rand.NewSource(int64(100 + id)))
	params := make([]float64, dim)
	target := make([]float64, dim)
	velocity := make([]float64, dim)
	for i := range target {
		target[i] = float64(id-1) + float64(i)*0.1
		if i%2 == 0 {
			velocity[i] = 0.02 * float64(i%5+1)
		}
	}

	for k := 0; k < rounds; k++ {
		local := append([]float64(nil), params...)
		for it := 0; it < 5; it++ {
			for i := range local {
				t := target[i] + velocity[i]*float64(k)
				local[i] -= 0.05 * ((local[i] - t) + 0.01*rng.NormFloat64())
			}
		}
		out, _, err := mgr.Sync(k, local, true)
		if err != nil {
			fail(err)
		}
		params = out
		specTotal += mgr.PredictableCount()
	}
	return params, specTotal
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tcp_cluster:", err)
	os.Exit(1)
}
