package fedsu

// This file is the benchmark harness mapping one testing.B benchmark to
// every table and figure of the paper's evaluation (Sec. VI), plus the
// micro-benchmarks and design-choice ablations called out in DESIGN.md §5.
//
// Each experiment benchmark runs its full driver at a reduced emulation
// scale and reports the headline quantity (time-to-accuracy, sparsification
// ratio, linear-share, ...) as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both times the harness and prints the reproduced numbers. For
// publication-scale runs use cmd/fedsu-bench with -scale standard.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"fedsu/internal/core"
	"fedsu/internal/data"
	"fedsu/internal/exp"
	"fedsu/internal/fl"
	"fedsu/internal/nn"
	"fedsu/internal/sparse"
	"fedsu/internal/tensor"
)

// benchConfig is the reduced scale used by the harness benchmarks.
func benchConfig() exp.Config {
	cfg := exp.FastConfig()
	cfg.Clients = 4
	cfg.Rounds = 24
	cfg.LocalIters = 3
	cfg.BatchSize = 8
	cfg.Samples = 512
	cfg.ModelScale = 16
	cfg.EvalEvery = 4
	return cfg
}

func BenchmarkFig1ParameterTrajectories(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 10
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig1(context.Background(), cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trajectories) != 2 {
			b.Fatal("expected trajectories for cnn and densenet121")
		}
	}
}

func BenchmarkFig2NormalizedDifference(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 10
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FracBelow["cnn"]
	}
	b.ReportMetric(frac, "frac-below-0.05")
}

func BenchmarkTable1TimeToAccuracy(b *testing.B) {
	cfg := benchConfig()
	ws := []exp.Workload{exp.CNNWorkload()}
	var fedsuT, fedavgT float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunEndToEnd(context.Background(), cfg, ws, exp.Schemes())
		if err != nil {
			b.Fatal(err)
		}
		fedsuT, _, _ = res.Runs["cnn"]["fedsu"].TimeToAccuracy(0.30)
		fedavgT, _, _ = res.Runs["cnn"]["fedavg"].TimeToAccuracy(0.30)
	}
	b.ReportMetric(fedsuT, "fedsu-s-to-acc")
	b.ReportMetric(fedavgT, "fedavg-s-to-acc")
}

func BenchmarkFig5SparsificationRatio(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 32
	var fedsuRatio, apfRatio float64
	for i := 0; i < b.N; i++ {
		rs, err := exp.RunOne(context.Background(), cfg, exp.CNNWorkload(), "fedsu")
		if err != nil {
			b.Fatal(err)
		}
		ra, err := exp.RunOne(context.Background(), cfg, exp.CNNWorkload(), "apf")
		if err != nil {
			b.Fatal(err)
		}
		fedsuRatio = rs.MeanSparsification()
		apfRatio = ra.MeanSparsification()
	}
	b.ReportMetric(100*fedsuRatio, "fedsu-sparse-%")
	b.ReportMetric(100*apfRatio, "apf-sparse-%")
}

func BenchmarkFig6TrajectoryApproximation(b *testing.B) {
	cfg := benchConfig()
	var approxErr float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6(context.Background(), cfg, exp.CNNWorkload())
		if err != nil {
			b.Fatal(err)
		}
		approxErr = res.ApproximationError()
	}
	b.ReportMetric(approxErr, "approx-error")
}

func BenchmarkFig7LinearShare(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 32
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig7(context.Background(), cfg, []exp.Workload{exp.CNNWorkload()})
		if err != nil {
			b.Fatal(err)
		}
		share = res.ShareLinearMajority["cnn"]
	}
	b.ReportMetric(100*share, "linear-majority-%")
}

func BenchmarkFig8Ablation(b *testing.B) {
	cfg := benchConfig()
	cfg.FedSU.FixedPeriod = 8
	cfg.FedSU.LaunchProb = 0.01
	var fullAcc, v2Acc float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig8(context.Background(), cfg, []exp.Workload{exp.CNNWorkload()})
		if err != nil {
			b.Fatal(err)
		}
		fullAcc = res.FinalAccuracy["cnn"]["fedsu"]
		v2Acc = res.FinalAccuracy["cnn"]["fedsu-v2"]
	}
	b.ReportMetric(fullAcc, "fedsu-final-acc")
	b.ReportMetric(v2Acc, "v2-final-acc")
}

func BenchmarkFig9SensitivityTR(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 12
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig9(context.Background(), cfg, []exp.Workload{exp.CNNWorkload()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10SensitivityTS(b *testing.B) {
	cfg := benchConfig()
	cfg.Rounds = 12
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig10(context.Background(), cfg, []exp.Workload{exp.CNNWorkload()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Overhead(b *testing.B) {
	cfg := benchConfig()
	var memMB float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(context.Background(), cfg,
			[]exp.Workload{exp.CNNWorkload()}, map[string]float64{"cnn": 7.0})
		if err != nil {
			b.Fatal(err)
		}
		memMB = res.Rows[0].MemoryInflationMB
	}
	b.ReportMetric(memMB, "mem-inflation-MB")
}

// --- Micro-benchmarks -------------------------------------------------

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := nn.NewConv2D(rng, 16, 32, 3, nn.WithPadding(1))
	x := tensor.New(8, 16, 14, 14)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

func BenchmarkManagerSync(b *testing.B) {
	const size = 100_000
	agg := passAgg{}
	mgr, err := core.NewManager(0, size, agg, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]float64, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range vec {
			vec[j] = float64(j%31)*0.1 + 0.001*float64(i)
		}
		if _, _, err := mgr.Sync(i, vec, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "params")
}

func BenchmarkFedAvgSyncBaseline(b *testing.B) {
	const size = 100_000
	s := sparse.NewFedAvg(0, size, passAgg{})
	vec := make([]float64, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Sync(i, vec, true); err != nil {
			b.Fatal(err)
		}
	}
}

type passAgg struct{}

func (passAgg) AggregateModel(_, _ int, v []float64) ([]float64, error) { return v, nil }
func (passAgg) AggregateError(_, _ int, v []float64) ([]float64, error) { return v, nil }

// --- Design-choice ablations (DESIGN.md §5) ----------------------------

// BenchmarkAblationTheta sweeps the EMA decay factor of the oscillation
// ratio and reports the resulting sparsification.
func BenchmarkAblationTheta(b *testing.B) {
	for _, theta := range []float64{0.5, 0.9, 0.95} {
		b.Run(fmt.Sprintf("theta=%v", theta), func(b *testing.B) {
			cfg := benchConfig()
			cfg.FedSU.Theta = theta
			var ratio float64
			for i := 0; i < b.N; i++ {
				run, err := exp.RunOne(context.Background(), cfg, exp.CNNWorkload(), "fedsu")
				if err != nil {
					b.Fatal(err)
				}
				ratio = run.MeanSparsification()
			}
			b.ReportMetric(100*ratio, "sparse-%")
		})
	}
}

// BenchmarkAblationSlope compares the smoothed slope estimator against the
// raw last-round slope (Sec. IV-B as literally stated).
func BenchmarkAblationSlope(b *testing.B) {
	for _, raw := range []bool{false, true} {
		name := "smoothed"
		if raw {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Rounds = 32
			cfg.FedSU.RawSlope = raw
			var ratio float64
			for i := 0; i < b.N; i++ {
				run, err := exp.RunOne(context.Background(), cfg, exp.CNNWorkload(), "fedsu")
				if err != nil {
					b.Fatal(err)
				}
				ratio = run.MeanSparsification()
			}
			b.ReportMetric(100*ratio, "sparse-%")
		})
	}
}

// BenchmarkTheorem1Schedule compares constant learning rate against the
// 1/√T schedule satisfying Theorem 1's convergence conditions (Eq. 13),
// reporting the final training loss of each.
func BenchmarkTheorem1Schedule(b *testing.B) {
	for _, warm := range []int{0, 50} {
		name := "constant"
		if warm > 0 {
			name = "inverse-sqrt"
		}
		b.Run(name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				ds := data.Synthesize(data.SynthConfig{
					Name: "thm", Channels: 1, Size: 8, Classes: 4,
					Samples: 512, Noise: 0.2, Jitter: 1, Seed: 11,
				})
				cfg := fl.DefaultConfig(4)
				cfg.LocalIters, cfg.BatchSize = 5, 8
				cfg.LR = 0.05
				cfg.EvalSamples = 64
				cfg.LRDecayWarm = warm
				builder := func() *nn.Model {
					return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
				}
				factory, err := fl.StrategyFactory("fedsu")
				if err != nil {
					b.Fatal(err)
				}
				e, err := fl.NewEngine(cfg, builder, ds, factory)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := e.Run(context.Background(), 20, 20)
				if err != nil {
					b.Fatal(err)
				}
				final = stats[len(stats)-1].TrainLoss
			}
			b.ReportMetric(final, "final-train-loss")
		})
	}
}

// BenchmarkAblationEncoding compares the bitmap and varint-index payload
// encodings across densities.
func BenchmarkAblationEncoding(b *testing.B) {
	const total = 200_000
	for _, density := range []float64{0.001, 0.03, 0.3} {
		rng := rand.New(rand.NewSource(3))
		mask := make([]bool, total)
		var indices []int
		var values []float64
		for i := range mask {
			if rng.Float64() < density {
				mask[i] = true
				indices = append(indices, i)
				values = append(values, rng.NormFloat64())
			}
		}
		b.Run(fmt.Sprintf("bitmap/density=%v", density), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(sparse.EncodeBitmapPayload(mask, values))
			}
			b.ReportMetric(float64(n), "bytes")
		})
		b.Run(fmt.Sprintf("index/density=%v", density), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(sparse.EncodeIndexPayload(indices, values))
			}
			b.ReportMetric(float64(n), "bytes")
		})
	}
}
