// Command fedsu-server runs the TCP aggregation coordinator for a real
// (non-emulated) federated deployment. Start it first, then launch
// fedsu-client processes pointing at its address.
//
// Usage:
//
//	fedsu-server -addr :7070 -clients 4 -workload cnn -scale 16
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fedsu"
	"fedsu/internal/exp"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "listen address")
		clients  = flag.Int("clients", 2, "expected number of clients")
		workload = flag.String("workload", "cnn", "model/dataset pair: "+strings.Join(fedsu.WorkloadNames(), ", "))
		scale    = flag.Int("scale", 0, "model width divisor (0 = per-workload default; must match the clients)")
		seed     = flag.Int64("seed", 1, "model seed (must match the clients)")
	)
	flag.Parse()

	w, err := exp.WorkloadByName(*workload)
	if err != nil {
		fatal(err)
	}
	size := w.Model(w.EffectiveScale(*scale), *seed+97).Size()

	l, err := fedsu.StartCoordinator(*addr, *clients, size)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fedsu-server: coordinating %d clients on %s (%s, %d params)\n",
		*clients, l.Addr(), *workload, size)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	l.Close()
	fmt.Println("fedsu-server: shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsu-server:", err)
	os.Exit(1)
}
