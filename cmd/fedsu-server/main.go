// Command fedsu-server runs the TCP aggregation coordinator for a real
// (non-emulated) federated deployment. Start it first, then launch
// fedsu-client processes pointing at its address.
//
// With -deadline set, each aggregation barrier closes that long after its
// first submission: clients that have not submitted by then are evicted
// and the round completes over the survivors, so one crashed client cannot
// wedge the session. Clients heartbeating within -hb-grace count as slow
// rather than dead and buy the barrier one extension.
//
// Usage:
//
//	fedsu-server -addr :7070 -clients 4 -workload cnn -scale 16 -deadline 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fedsu"
	"fedsu/internal/exp"
	"fedsu/internal/flrpc"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address")
		clients   = flag.Int("clients", 2, "expected number of clients")
		workload  = flag.String("workload", "cnn", "model/dataset pair: "+strings.Join(fedsu.WorkloadNames(), ", "))
		scale     = flag.Int("scale", 0, "model width divisor (0 = per-workload default; must match the clients)")
		seed      = flag.Int64("seed", 1, "model seed (must match the clients)")
		deadline  = flag.Duration("deadline", 0, "collective barrier deadline; clients missing it are evicted (0 = wait forever)")
		hbGrace   = flag.Duration("hb-grace", 0, "treat clients heard from this recently as alive at deadline expiry (0 = deadline)")
		async     = flag.Bool("async", false, "buffered-async aggregation: fold submissions as they arrive, no round barrier")
		asyncK    = flag.Int("k", 0, "async buffer size: apply the global every K contributions (default clients/2)")
		staleness = flag.Int("staleness", 8, "async: drop contributions more than this many versions behind (-1 = unlimited)")
		staleW    = flag.Float64("staleness-weight", 0.5, "async: per-version contribution weight decay in (0, 1]")
		fanout    = flag.Int("fanout", 0, "hierarchical aggregation: >= 2 runs the tree collective (relays join aligned id blocks, root folds partials; bit-identical to flat)")
		upstream  = flag.String("upstream", "", "run as a leaf-aggregator relay of this root coordinator instead of a root (serves -clients members, forwards one partial per round)")
		compress  = flag.String("compress", "", "wire compression chain spec for replies, e.g. topk,q4,rans (must match the clients' -compress; empty = default codec)")
	)
	flag.Parse()

	if *upstream != "" {
		runRelay(*upstream, *addr, *clients, *deadline, *hbGrace)
		return
	}

	w, err := exp.WorkloadByName(*workload)
	if err != nil {
		fatal(err)
	}
	size := w.Model(w.EffectiveScale(*scale), *seed+97).Size()

	cfg := flrpc.Config{
		NumClients:     *clients,
		ModelSize:      size,
		Deadline:       *deadline,
		HeartbeatGrace: *hbGrace,
		Fanout:         *fanout,
		Compress:       *compress,
		CompressSeed:   *seed,
	}
	if *async {
		k := *asyncK
		if k <= 0 {
			k = *clients / 2
			if k < 1 {
				k = 1
			}
		}
		cfg.Async = fedsu.AsyncConfig{K: k, MaxStaleness: *staleness, StalenessWeight: *staleW}
	}
	coord, err := flrpc.NewCoordinatorWith(cfg)
	if err != nil {
		fatal(err)
	}
	svc, err := flrpc.Listen(*addr, coord)
	if err != nil {
		fatal(err)
	}
	mode := "sync barriers"
	if cfg.Async.Enabled() {
		mode = fmt.Sprintf("async K=%d maxStale=%d w=%.2f", cfg.Async.K, cfg.Async.MaxStaleness, cfg.Async.StalenessWeight)
	}
	if cfg.Fanout >= 2 {
		mode += fmt.Sprintf(", tree fanout %d", cfg.Fanout)
	}
	if *compress != "" {
		mode += ", compress " + *compress
	}
	fmt.Printf("fedsu-server: coordinating %d clients on %s (%s, %d params, deadline %v, %s)\n",
		*clients, svc.Addr(), *workload, size, *deadline, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		svc.Close()
		<-svc.Done()
	case <-svc.Done():
		// The serve loop died on its own: surface the failure as a non-zero
		// exit instead of hanging around with clients stranded.
		if err := svc.Err(); err != nil {
			fatal(err)
		}
	}
	if n := coord.EvictionCount(); n > 0 {
		fmt.Printf("fedsu-server: evicted clients %v\n", coord.Evicted())
	}
	if cfg.Async.Enabled() {
		fmt.Printf("fedsu-server: async applied %d globals, dropped %d stale contributions\n",
			coord.AsyncVersion(), coord.StaleDropCount())
	}
	if cfg.Fanout >= 2 {
		st := coord.TierStats()
		fmt.Printf("fedsu-server: tree %d tiers, %d leaf folds, %d partials received\n",
			st.Tiers, st.LeafFolds, st.ForwardedPartials)
	}
	if s := coord.Counters().String(); s != "" {
		fmt.Printf("fedsu-server: %s\n", s)
	}
	fmt.Println("fedsu-server: shutting down")
}

// runRelay serves one aligned block of members as a leaf aggregator of
// the tree rooted at upstream: the model size and the block's base id are
// adopted from the root at join time, members dial this process exactly
// like a flat coordinator, and each round forwards a single partial-sum
// message upstream.
func runRelay(upstream, addr string, members int, deadline, hbGrace time.Duration) {
	relay, err := flrpc.NewRelay(flrpc.RelayConfig{
		Upstream:       upstream,
		BlockSize:      members,
		Deadline:       deadline,
		HeartbeatGrace: hbGrace,
	})
	if err != nil {
		fatal(err)
	}
	defer relay.Close()
	svc, err := flrpc.Listen(addr, relay.Coordinator())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fedsu-server: relay for %d members on %s (block base %d at root %s, %d params, deadline %v)\n",
		members, svc.Addr(), relay.BaseID(), upstream, relay.ModelSize(), deadline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		svc.Close()
		<-svc.Done()
	case <-svc.Done():
		if err := svc.Err(); err != nil {
			fatal(err)
		}
	}
	if n := relay.Coordinator().EvictionCount(); n > 0 {
		fmt.Printf("fedsu-server: relay evicted members %v\n", relay.Coordinator().Evicted())
	}
	if s := relay.Coordinator().Counters().String(); s != "" {
		fmt.Printf("fedsu-server: %s\n", s)
	}
	fmt.Println("fedsu-server: relay shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsu-server:", err)
	os.Exit(1)
}
