// Command fedsu-trace is the parameter-trajectory microscope: it replays
// the paper's motivational measurements (Figs. 1 and 2) and the FedSU
// microscopic studies (Figs. 6 and 7) on the emulated cluster, printing
// ASCII plots and optional CSVs.
//
// Usage:
//
//	fedsu-trace -fig 1
//	fedsu-trace -fig 6 -workload cnn -rounds 80 -out results/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fedsu/internal/exp"
	"fedsu/internal/trace"
)

func main() {
	var (
		fig      = flag.Int("fig", 1, "figure to regenerate: 1, 2, 6, or 7")
		workload = flag.String("workload", "cnn", "workload for fig 6")
		rounds   = flag.Int("rounds", 0, "override rounds")
		clients  = flag.Int("clients", 0, "override clients")
		outDir   = flag.String("out", "", "directory for CSV output")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := exp.FastConfig()
	cfg.Seed = *seed
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	ctx := context.Background()

	var err error
	switch *fig {
	case 1:
		err = runFig1(ctx, cfg, *outDir)
	case 2:
		err = runFig2(ctx, cfg, *outDir)
	case 6:
		err = runFig6(ctx, cfg, *workload, *outDir)
	case 7:
		err = runFig7(ctx, cfg, *outDir)
	default:
		err = fmt.Errorf("figure %d is not a trace figure (want 1, 2, 6, or 7)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsu-trace:", err)
		os.Exit(1)
	}
}

func runFig1(ctx context.Context, cfg exp.Config, out string) error {
	res, err := exp.RunFig1(ctx, cfg, 2)
	if err != nil {
		return err
	}
	for name, series := range res.Trajectories {
		fmt.Printf("Fig 1 (%s): sampled parameter trajectories\n", name)
		if err := trace.AsciiPlot(os.Stdout, 72, 14, series...); err != nil {
			return err
		}
		if err := save(out, "fig1_"+name+".csv", series...); err != nil {
			return err
		}
	}
	return nil
}

func runFig2(ctx context.Context, cfg exp.Config, out string) error {
	res, err := exp.RunFig2(ctx, cfg)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	if res.Instantaneous != nil {
		fmt.Println("Fig 2a: instantaneous normalized difference (CNN)")
		if err := trace.AsciiPlot(os.Stdout, 72, 10, res.Instantaneous); err != nil {
			return err
		}
	}
	for name, cdf := range res.CDFs {
		fmt.Printf("Fig 2b: CDF (%s)\n", name)
		if err := trace.AsciiPlot(os.Stdout, 72, 10, cdf); err != nil {
			return err
		}
		if err := save(out, "fig2_cdf_"+name+".csv", cdf); err != nil {
			return err
		}
	}
	return nil
}

func runFig6(ctx context.Context, cfg exp.Config, workload, out string) error {
	w, err := exp.WorkloadByName(workload)
	if err != nil {
		return err
	}
	res, err := exp.RunFig6(ctx, cfg, w)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 6 (%s, param %d): speculative periods start=%v end=%v, approx err %.4f\n",
		res.Workload, res.ParamIndex, res.SpecStart, res.SpecEnd, res.ApproximationError())
	if err := trace.AsciiPlot(os.Stdout, 72, 14, res.FedSU, res.FedAvg); err != nil {
		return err
	}
	return save(out, "fig6_"+res.Workload+".csv", res.FedSU, res.FedAvg)
}

func runFig7(ctx context.Context, cfg exp.Config, out string) error {
	res, err := exp.RunFig7(ctx, cfg, exp.Workloads())
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	for name, cdf := range res.CDFs {
		fmt.Printf("Fig 7: CDF of linear fractions (%s)\n", name)
		if err := trace.AsciiPlot(os.Stdout, 72, 10, cdf); err != nil {
			return err
		}
		if err := save(out, "fig7_cdf_"+name+".csv", cdf); err != nil {
			return err
		}
	}
	return nil
}

func save(dir, name string, series ...*trace.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteCSVMulti(f, series...)
}
