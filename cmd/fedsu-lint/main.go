// fedsu-lint is the project's static-analysis gate: a multichecker that
// runs every fedsu analyzer over the requested package patterns and exits
// non-zero when any contract is violated.
//
// Usage:
//
//	fedsu-lint [flags] [package patterns]
//
//	fedsu-lint ./...                 # the make lint invocation
//	fedsu-lint -run scratchpair ./internal/nn/...
//	fedsu-lint -list                 # show the analyzers and their contracts
//
// Findings print as file:line:col: analyzer: message, one per line.
// Suppress an individual finding with `//lint:allow <analyzer> -- <reason>`
// on (or directly above) the offending line; the ` -- reason` part is
// mandatory, and a directive without it is itself reported as malformed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fedsu/internal/analysis"
	"fedsu/internal/analysis/ctxdispatch"
	"fedsu/internal/analysis/determinism"
	"fedsu/internal/analysis/driver"
	"fedsu/internal/analysis/errwrap"
	"fedsu/internal/analysis/goleak"
	"fedsu/internal/analysis/lockhold"
	"fedsu/internal/analysis/precision"
	"fedsu/internal/analysis/scratchpair"
	"fedsu/internal/analysis/sharedmut"
	"fedsu/internal/analysis/tokenpair"
)

// analyzers is the full fedsu-lint suite: the syntactic/type-based checks
// from earlier issues plus the CFG/dataflow concurrency-discipline checks
// (lockhold, goleak, tokenpair, sharedmut).
var analyzers = []*analysis.Analyzer{
	scratchpair.Analyzer,
	ctxdispatch.Analyzer,
	determinism.Analyzer,
	errwrap.Analyzer,
	precision.Analyzer,
	lockhold.Analyzer,
	goleak.Analyzer,
	tokenpair.Analyzer,
	sharedmut.Analyzer,
}

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedsu-lint [flags] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	selected := analyzers
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "fedsu-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsu-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := driver.Load(cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsu-lint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range selected {
			diags, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fedsu-lint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fedsu-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
