// Command fedsu-plot renders the CSV series emitted by fedsu-bench and
// fedsu-trace as standalone SVG line charts, so the reproduced figures can
// be viewed without an external plotting stack.
//
// Usage:
//
//	fedsu-plot -in results/fig5_acc_cnn.csv -out fig5_cnn.svg -title "Fig 5 (CNN)"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fedsu/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV (first column x, one column per series)")
		out    = flag.String("out", "", "output SVG path (default: input with .svg)")
		title  = flag.String("title", "", "chart title")
		xlabel = flag.String("xlabel", "", "x-axis label (default: CSV header)")
		ylabel = flag.String("ylabel", "", "y-axis label")
		width  = flag.Int("width", 640, "canvas width")
		height = flag.Int("height", 400, "canvas height")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "fedsu-plot: -in is required")
		os.Exit(2)
	}
	if *out == "" {
		*out = strings.TrimSuffix(*in, ".csv") + ".svg"
	}

	f0, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	series, xname, err := trace.ReadCSVMulti(f0)
	f0.Close()
	if err != nil {
		fatal(err)
	}
	if *xlabel == "" {
		*xlabel = xname
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	opts := trace.SVGOptions{
		Title: *title, Width: *width, Height: *height,
		XLabel: *xlabel, YLabel: *ylabel,
	}
	if err := trace.WriteSVG(f, opts, series...); err != nil {
		fatal(err)
	}
	fmt.Printf("fedsu-plot: wrote %s (%d series)\n", *out, len(series))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsu-plot:", err)
	os.Exit(1)
}
