// Command fedsu-client joins a fedsu-server coordinator over TCP and
// trains locally with the selected synchronization strategy. Every client
// of a session must use the same workload, scale, seed, and scheme.
//
// Transport failures mid-round are retried with exponential backoff and a
// transparent reconnect-and-rejoin (-retries); -heartbeat keeps the
// coordinator informed that a slow client is still alive. Ctrl-C cancels
// the in-flight round cleanly instead of leaving the process parked on a
// barrier.
//
// Usage:
//
//	fedsu-client -addr host:7070 -workload cnn -scheme fedsu -rounds 60
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fedsu"
	"fedsu/internal/data"
	"fedsu/internal/exp"
	"fedsu/internal/fl"
	"fedsu/internal/opt"
	"fedsu/internal/sparse"
	"fedsu/internal/sparse/codec"
	"fedsu/internal/tensor"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "coordinator address")
		name      = flag.String("name", "client", "client label")
		workload  = flag.String("workload", "cnn", "model/dataset pair: "+strings.Join(fedsu.WorkloadNames(), ", "))
		scheme    = flag.String("scheme", "fedsu", "sync strategy: "+strings.Join(fedsu.StrategyNames(), ", "))
		rounds    = flag.Int("rounds", 60, "training rounds")
		iters     = flag.Int("iters", 5, "local iterations per round")
		batch     = flag.Int("batch", 8, "mini-batch size")
		samples   = flag.Int("samples", 1024, "synthetic dataset size (shared across the fleet)")
		scale     = flag.Int("scale", 0, "model width divisor (0 = per-workload default; must match the server)")
		seed      = flag.Int64("seed", 1, "fleet-shared seed")
		retries   = flag.Int("retries", 4, "collective-call retries on transport failure (-1 disables)")
		dtype     = flag.String("dtype", "float64", "compute precision: float64 or float32 (must match the fleet)")
		heartbeat = flag.Duration("heartbeat", time.Second, "heartbeat interval so the coordinator can tell slow from dead (0 disables)")
		compress  = flag.String("compress", "", "wire compression chain spec for uploads, e.g. topk,q4,rans (must match the server's -compress; empty = default codec)")
	)
	flag.Parse()

	w, err := exp.WorkloadByName(*workload)
	if err != nil {
		fatal(err)
	}
	dt, err := tensor.ParseDType(*dtype)
	if err != nil {
		fatal(err)
	}

	if dt == tensor.Float32 && *compress != "" {
		fatal(fmt.Errorf("-compress is unsupported with -dtype float32: chain wire images are not float32-exact"))
	}

	conn, err := fedsu.DialCoordinatorWith(*addr, fedsu.ClientConfig{
		Name:         *name,
		MaxRetries:   *retries,
		Heartbeat:    *heartbeat,
		Compress:     *compress,
		CompressSeed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	id := conn.ClientID()
	fmt.Printf("fedsu-client: joined as client %d of %d\n", id, conn.NumClients())

	model := w.ModelOf(dt, w.EffectiveScale(*scale), *seed+97)
	if model.Size() != conn.ModelSize() {
		fatal(fmt.Errorf("model size %d does not match session %d (check -workload/-scale/-seed)",
			model.Size(), conn.ModelSize()))
	}

	// Every client generates the same dataset from the shared seed, then
	// takes its Dirichlet shard by id — the deterministic analogue of each
	// device owning private data.
	ds := w.Dataset(*samples, *seed+31)
	shards := data.PartitionDirichlet(ds, conn.NumClients(), 1.0, *seed)
	shard := shards[id]

	opts := fedsu.DefaultOptions()
	if dt == tensor.Float32 {
		// Keep the FedSU state machine in the wire image the float32 model
		// actually stores (see core.Options.Quantize).
		opts.Quantize = true
	}
	factory, err := fl.StrategyFactoryWith(*scheme, opts)
	if err != nil {
		fatal(err)
	}
	syncer := factory(id, model.Size(), conn)
	if *compress != "" {
		// The transport does the actual encode/decode; the local strategy
		// only needs the chain for byte accounting, so the printed
		// sparsification ratio is rebased on the negotiated chain's dense
		// cost rather than the legacy f32 codec's.
		chain, err := codec.Parse(*compress, *seed)
		if err != nil {
			fatal(err)
		}
		if !chain.IsDefault() {
			sparse.SetSyncerWire(syncer, sparse.Wire{Chain: chain})
		}
	}
	optimizer := opt.NewSGD(w.LR, opt.WithWeightDecay(0.001))
	client := fl.NewClient(id, model, optimizer, shard, syncer, *seed+int64(id)*7919)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var total sparse.Traffic
	for k := 0; k < *rounds; k++ {
		loss := client.TrainLocal(*iters, *batch)
		tr, err := client.SyncRoundCtx(ctx, k, true)
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled):
				fmt.Println("fedsu-client: interrupted, leaving session")
				return
			case errors.Is(err, fedsu.ErrEvicted):
				fatal(fmt.Errorf("evicted by coordinator at round %d (missed the collective deadline): %w", k, err))
			default:
				fatal(err)
			}
		}
		total.Add(tr)
		fmt.Printf("round %3d: train_loss=%.4f synced=%d/%d up=%dB\n",
			k, loss, tr.SyncedParams, tr.TotalParams, tr.UpBytes)
	}
	fmt.Printf("done: total up=%.2fMB down=%.2fMB mean sparsification=%.1f%%\n",
		float64(total.UpBytes)/1e6, float64(total.DownBytes)/1e6,
		100*total.SparsificationRatio())
	if s := conn.Counters().String(); s != "" {
		fmt.Printf("fedsu-client: %s\n", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsu-client:", err)
	os.Exit(1)
}
