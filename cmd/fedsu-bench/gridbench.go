package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"fedsu/internal/exp"
)

// runGridBench measures the end-to-end harness speedup the grid scheduler
// delivers on the Table I grid. The sequential arm repeats the
// pre-scheduler path — a direct RunOne loop, so every run synthesizes its
// own dataset and partition. The parallel arm runs the same grid through
// RunEndToEnd with cfg.Parallel slots and a fresh artifact cache per rep
// (no warm-cache advantage across reps). Per-arm wall-clock medians, peak
// RSS, and the cache's synthesis accounting are emitted on stdout as the
// BENCH_grid.json document; progress lines go to stderr.
func runGridBench(ctx context.Context, cfg exp.Config, reps int, scale string) error {
	ws := exp.Workloads()
	schemes := exp.Schemes()
	// Silence per-run logging in both arms: measuring, not reporting.
	cfg.Verbose = nil
	cfg.Clock = nil
	runsPerRep := len(ws) * len(schemes)

	fmt.Fprintf(os.Stderr, "gridbench: table1 grid, %d runs/rep, %d reps/arm, %d parallel slots\n",
		runsPerRep, reps, cfg.Parallel)

	resetPeakRSS()
	seqWalls := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, w := range ws {
			for _, s := range schemes {
				if _, err := exp.RunOne(ctx, cfg, w, s); err != nil {
					return fmt.Errorf("gridbench sequential: %w", err)
				}
			}
		}
		wall := time.Since(start).Seconds()
		seqWalls = append(seqWalls, wall)
		fmt.Fprintf(os.Stderr, "gridbench: sequential rep %d/%d: %.1fs\n", r+1, reps, wall)
	}
	seqRSS, _ := peakRSS()

	resetPeakRSS()
	parWalls := make([]float64, 0, reps)
	var dsBuilds, partBuilds int64
	for r := 0; r < reps; r++ {
		c := cfg
		c.Artifacts = exp.NewArtifacts()
		start := time.Now()
		if _, err := exp.RunEndToEnd(ctx, c, ws, schemes); err != nil {
			return fmt.Errorf("gridbench parallel: %w", err)
		}
		wall := time.Since(start).Seconds()
		parWalls = append(parWalls, wall)
		dsBuilds = c.Artifacts.DatasetBuilds()
		partBuilds = c.Artifacts.PartitionBuilds()
		fmt.Fprintf(os.Stderr, "gridbench: parallel rep %d/%d: %.1fs (%d dataset builds)\n",
			r+1, reps, wall, dsBuilds)
	}
	parRSS, _ := peakRSS()

	seqMed, parMed := median(seqWalls), median(parWalls)
	doc := map[string]any{
		"host": map[string]any{
			"cpu":    cpuModel(),
			"cores":  runtime.NumCPU(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"method": fmt.Sprintf(
			"fedsu-bench -scale %s -parallel %d -gridbench %d: the Table I grid (%d workloads x %d schemes), median of %d reps per arm; sequential arm is the pre-scheduler path (direct RunOne loop, per-run dataset synthesis), parallel arm is RunEndToEnd on the grid scheduler with a fresh shared-artifact cache per rep",
			scale, cfg.Parallel, reps, len(ws), len(schemes), reps),
		"grid": map[string]any{
			"experiment":     "table1",
			"scale":          scale,
			"runs_per_rep":   runsPerRep,
			"parallel_slots": cfg.Parallel,
			"rounds":         cfg.Rounds,
			"clients":        cfg.Clients,
			"dtype":          cfg.DType.String(),
		},
		"wall_seconds": map[string]any{
			"sequential_median": round2(seqMed),
			"parallel_median":   round2(parMed),
			"speedup":           round2(seqMed / parMed),
			"sequential_reps":   round2s(seqWalls),
			"parallel_reps":     round2s(parWalls),
		},
		"dataset_synthesis_per_rep": map[string]any{
			"sequential": runsPerRep,
			"parallel":   dsBuilds,
			"note":       "sequential synthesizes one corpus per run; the cache builds each distinct (workload data, samples, seed) corpus exactly once per rep",
		},
		"partition_builds_per_rep": map[string]any{
			"sequential": runsPerRep,
			"parallel":   partBuilds,
		},
		"peak_rss_mib": map[string]any{
			"sequential": round2(seqRSS / (1 << 20)),
			"parallel":   round2(parRSS / (1 << 20)),
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gridbench: sequential median %.1fs, parallel median %.1fs, speedup %.2fx\n",
		seqMed, parMed, seqMed/parMed)
	_, err = fmt.Printf("%s\n", out)
	return err
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

func round2s(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = round2(x)
	}
	return out
}

// cpuModel best-effort reads the CPU model string (Linux /proc/cpuinfo).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// peakRSS reads the process peak resident set (Linux VmHWM) in bytes.
// The second return is false where /proc is unavailable.
func peakRSS() (float64, bool) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			var kb float64
			if _, err := fmt.Sscanf(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "kB")), "%f", &kb); err != nil {
				return 0, false
			}
			return kb * 1024, true
		}
	}
	return 0, false
}

// resetPeakRSS best-effort rearms the peak-RSS watermark (writing "5" to
// /proc/self/clear_refs resets VmHWM) so per-phase peaks are attributable.
// A failure just leaves the watermark monotone — reporting stays valid as
// an upper bound.
func resetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}
