// Command fedsu-bench regenerates the paper's tables and figures on the
// emulated cluster. Each experiment prints the paper-style rows/series and
// optionally writes CSVs for plotting.
//
// Usage:
//
//	fedsu-bench -exp all                 # everything, fast scale
//	fedsu-bench -exp table1 -scale standard -out results/
//	fedsu-bench -exp fig9 -rounds 120
//
// Experiments: fig1 fig2 table1 fig5 fig6 fig7 fig8 fig9 fig10 table2 all,
// plus "async" — the sync-vs-buffered-async time-to-accuracy comparison
// under the heterogeneous netem profile (not part of "all", which tracks
// the paper's own figure set).
//
// Grid experiments (table1/fig5, fig8, fig9/fig10) fan their independent
// runs across -parallel slots sharing one dataset/partition cache; results
// are bit-identical to -seq at any slot count (internal/exp's scheduler
// contract). -gridbench N times the table1 grid sequentially-uncached vs
// parallel-cached and emits the BENCH_grid.json document on stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"fedsu/internal/exp"
	"fedsu/internal/tensor"
	"fedsu/internal/trace"
)

func main() {
	// Deep conv models churn large transient im2col matrices; a tighter GC
	// target keeps the resident set bounded on memory-constrained hosts.
	debug.SetGCPercent(50)
	var (
		expName    = flag.String("exp", "all", "experiment id (fig1..fig10, table1, table2, all)")
		scale      = flag.String("scale", "fast", "preset: fast or standard")
		rounds     = flag.Int("rounds", 0, "override rounds")
		clients    = flag.Int("clients", 0, "override client count")
		outDir     = flag.String("out", "", "directory for CSV output")
		seed       = flag.Int64("seed", 1, "random seed")
		modelScale = flag.Int("modelscale", 0, "override model width divisor (1 = paper scale)")
		light      = flag.Bool("light", false, "restrict the ablation and sensitivity sweeps to the CNN workload")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment runs in flight at once in the grid experiments")
		seq        = flag.Bool("seq", false, "force sequential grid execution (same as -parallel 1)")
		gridBench  = flag.Int("gridbench", 0, "run the table1 grid n times sequential-uncached and n times parallel-cached, report medians, and write the BENCH_grid.json document to stdout")
		dtype      = flag.String("dtype", "float64", "compute precision: float64 (bit-identical legacy results) or float32 (half the memory bandwidth, lossless wire)")
		population = flag.Int("population", 0, "registered device count for the popscale experiment (e.g. 100000)")
		cohort     = flag.Int("cohort", 0, "per-round sampled cohort size in population mode (sets the slot count)")
		fanouts    = flag.String("fanout", "8,32", "comma-separated tree fanouts the popscale experiment compares against the flat fold")
		compress   = flag.String("compress", "", "wire compression chain spec applied to every run, e.g. topk,q4,rans (the compose experiment sweeps its own cells)")
	)
	flag.Parse()

	cfg := exp.FastConfig()
	if *scale == "standard" {
		cfg = exp.StandardConfig()
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	} else if *expName == "compose" {
		// Quantized compose cells converge slower (error feedback carries
		// the rounding loss forward, it doesn't erase it); give every cell
		// time to reach the converged plateau so the table's accuracy
		// column reads the chains' asymptotic cost.
		cfg.Rounds = 96
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *modelScale > 0 {
		cfg.ModelScale = *modelScale
	}
	cfg.Seed = *seed
	cfg.Population = *population
	if *cohort > 0 {
		cfg.Clients = *cohort
	}
	popFanouts, err := parseFanouts(*fanouts)
	if err != nil {
		fatal(err)
	}
	dt, err := tensor.ParseDType(*dtype)
	if err != nil {
		fatal(err)
	}
	cfg.DType = dt
	cfg.Compress = *compress
	cfg.Verbose = os.Stderr
	cfg.Parallel = *parallel
	if *seq {
		cfg.Parallel = 1
	}
	// One cache for the whole invocation: -exp all shares corpora and
	// partitions across table1, fig8, and the sensitivity sweeps.
	cfg.Artifacts = exp.NewArtifacts()
	// Wall-clock enters run logic only through this injected clock (the
	// scheduler stamps per-run wall time with it); results stay a pure
	// function of Config and seed.
	cfg.Clock = time.Now

	if *gridBench > 0 {
		if err := runGridBench(context.Background(), cfg, *gridBench, *scale); err != nil {
			fatal(err)
		}
		return
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	ids := strings.Split(*expName, ",")
	if *expName == "all" {
		ids = []string{"fig1", "fig2", "table1+fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2"}
	}
	for _, id := range ids {
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		resetPeakRSS()
		start := time.Now()
		if err := runExperiment(ctx, cfg, id, *outDir, *light, popFanouts); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		line := fmt.Sprintf("--- %s: wall %s, allocated %.1f MiB in %d objects",
			id, time.Since(start).Round(time.Millisecond),
			float64(after.TotalAlloc-before.TotalAlloc)/(1<<20),
			after.Mallocs-before.Mallocs)
		if rss, ok := peakRSS(); ok {
			line += fmt.Sprintf(", peak RSS %.1f MiB", rss/(1<<20))
		}
		fmt.Println(line)
	}
}

func runExperiment(ctx context.Context, cfg exp.Config, id, outDir string, light bool, popFanouts []int) error {
	sweepSet := []exp.Workload{exp.CNNWorkload(), exp.DenseNetWorkload()}
	if light {
		sweepSet = []exp.Workload{exp.CNNWorkload()}
	}
	fmt.Printf("\n=== %s ===\n", id)
	switch id {
	case "fig1":
		res, err := exp.RunFig1(ctx, cfg, 2)
		if err != nil {
			return err
		}
		for name, series := range res.Trajectories {
			fmt.Printf("Fig 1 (%s): parameter trajectories\n", name)
			if err := trace.AsciiPlot(os.Stdout, 72, 14, series...); err != nil {
				return err
			}
			if err := writeCSV(outDir, "fig1_"+name+".csv", series...); err != nil {
				return err
			}
		}
	case "fig2":
		res, err := exp.RunFig2(ctx, cfg)
		if err != nil {
			return err
		}
		res.Report(os.Stdout)
		if res.Instantaneous != nil {
			if err := trace.AsciiPlot(os.Stdout, 72, 10, res.Instantaneous); err != nil {
				return err
			}
			if err := writeCSV(outDir, "fig2_instantaneous.csv", res.Instantaneous); err != nil {
				return err
			}
		}
		for name, cdf := range res.CDFs {
			if err := writeCSV(outDir, "fig2_cdf_"+name+".csv", cdf); err != nil {
				return err
			}
		}
	case "table1", "fig5", "table1+fig5":
		ws := exp.Workloads()
		res, err := exp.RunEndToEnd(ctx, cfg, ws, exp.Schemes())
		if err != nil {
			return err
		}
		if err := res.Report(os.Stdout, ws); err != nil {
			return err
		}
		for _, w := range ws {
			acc, ratio := res.Fig5Series(w.Name)
			fmt.Printf("\nFig 5 (%s): time-to-accuracy\n", w.Name)
			if err := trace.AsciiPlot(os.Stdout, 72, 14, acc...); err != nil {
				return err
			}
			if err := writeCSV(outDir, "fig5_acc_"+w.Name+".csv", acc...); err != nil {
				return err
			}
			if err := writeCSV(outDir, "fig5_ratio_"+w.Name+".csv", ratio...); err != nil {
				return err
			}
		}
	case "fig6":
		res, err := exp.RunFig6(ctx, cfg, exp.CNNWorkload())
		if err != nil {
			return err
		}
		fmt.Printf("Fig 6 (%s, param %d): FedSU vs FedAvg trajectory\n", res.Workload, res.ParamIndex)
		fmt.Printf("  speculative periods start=%v end=%v\n", res.SpecStart, res.SpecEnd)
		fmt.Printf("  normalized approximation error: %.4f\n", res.ApproximationError())
		if err := trace.AsciiPlot(os.Stdout, 72, 14, res.FedSU, res.FedAvg); err != nil {
			return err
		}
		return writeCSV(outDir, "fig6_"+res.Workload+".csv", res.FedSU, res.FedAvg)
	case "fig7":
		fig7WS := exp.Workloads()
		if light {
			fig7WS = sweepSet
		}
		res, err := exp.RunFig7(ctx, cfg, fig7WS)
		if err != nil {
			return err
		}
		res.Report(os.Stdout)
		for name, cdf := range res.CDFs {
			if err := writeCSV(outDir, "fig7_cdf_"+name+".csv", cdf); err != nil {
				return err
			}
		}
	case "fig8":
		ws := sweepSet
		res, err := exp.RunFig8(ctx, cfg, ws)
		if err != nil {
			return err
		}
		res.Report(os.Stdout)
		for _, w := range ws {
			var acc []*trace.Series
			for _, v := range exp.Variants() {
				acc = append(acc, res.Accuracy[w.Name][v])
			}
			if err := writeCSV(outDir, "fig8_acc_"+w.Name+".csv", acc...); err != nil {
				return err
			}
		}
	case "fig9", "fig10":
		ws := sweepSet
		var res *exp.SweepResult
		var err error
		if id == "fig9" {
			res, err = exp.RunFig9(ctx, cfg, ws)
		} else {
			res, err = exp.RunFig10(ctx, cfg, ws)
		}
		if err != nil {
			return err
		}
		res.Report(os.Stdout)
	case "async":
		w := exp.CNNWorkload()
		res, err := exp.RunAsyncCompare(ctx, cfg, w)
		if err != nil {
			return err
		}
		res.Report(os.Stdout)
		var acc []*trace.Series
		for _, mode := range exp.AsyncModes() {
			acc = append(acc, res.Accuracy[mode])
		}
		fmt.Printf("\nAsync (%s): sync vs async time-to-accuracy\n", w.Name)
		if err := trace.AsciiPlot(os.Stdout, 72, 14, acc...); err != nil {
			return err
		}
		if err := writeCSV(outDir, "async_acc_"+w.Name+".csv", acc...); err != nil {
			return err
		}
		if outDir != "" {
			f, err := os.Create(filepath.Join(outDir, "async_acc_"+w.Name+".svg"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := trace.WriteSVG(f, trace.SVGOptions{
				Title:  "Sync vs buffered-async time-to-accuracy (" + w.Name + ")",
				XLabel: "emulated seconds", YLabel: "accuracy",
			}, acc...); err != nil {
				return err
			}
		}
	case "popscale":
		// Table-I-style run at population scale: a cohort sampled per
		// round from the registered devices, folded flat and through
		// hierarchical trees; identical training trajectory, different
		// root ingest.
		if cfg.Population == 0 {
			cfg.Population = 100_000
		}
		w := exp.CNNWorkload()
		res, err := exp.RunPopScale(ctx, cfg, w, "fedavg", popFanouts)
		if err != nil {
			return err
		}
		if err := res.Table().Render(os.Stdout); err != nil {
			return err
		}
	case "compose":
		// Composable-compression grid: FedSU alone and under chained
		// sparsify→quantize→entropy wire paths, plus a QSGD×entropy
		// reference. Byte columns are measured wire bytes, not analytic.
		// The default horizon (set in main) is long enough for every cell
		// to reach the converged plateau, so the accuracy column isolates
		// the chains' asymptotic cost, not a mid-training snapshot.
		w := exp.CNNWorkload()
		res, err := exp.RunComposition(ctx, cfg, w, exp.ComposeCells())
		if err != nil {
			return err
		}
		if err := res.Table().Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return res.StageTable().Render(os.Stdout)
	case "table2":
		// Per-round compute baselines from the netem calibration.
		base := map[string]float64{}
		for _, w := range exp.Workloads() {
			base[w.Name] = 1.2e-7 * float64(w.WireParams) * float64(cfg.LocalIters)
		}
		res, err := exp.RunTable2(ctx, cfg, exp.Workloads(), base)
		if err != nil {
			return err
		}
		res.Report(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment (want fig1..fig10, table1, table2, async, popscale, compose, all)")
	}
	return nil
}

// parseFanouts parses the -fanout list ("8,32") into tree fanouts.
func parseFanouts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var f int
		if _, err := fmt.Sscanf(part, "%d", &f); err != nil || f < 2 {
			return nil, fmt.Errorf("bad fanout %q (want integers >= 2)", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -fanout list")
	}
	return out, nil
}

func writeCSV(dir, name string, series ...*trace.Series) error {
	if dir == "" || len(series) == 0 {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteCSVMulti(f, series...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsu-bench:", err)
	os.Exit(1)
}
