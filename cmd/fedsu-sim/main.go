// Command fedsu-sim runs one emulated federated-learning training run and
// prints per-round statistics: accuracy, loss, sparsification ratio, and
// the emulated wall-clock produced by the bandwidth model.
//
// Usage:
//
//	fedsu-sim -workload cnn -scheme fedsu -clients 16 -rounds 100
//	fedsu-sim -workload resnet18 -scheme apf -csv run.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fedsu"
)

func main() {
	var (
		workload   = flag.String("workload", "cnn", "model/dataset pair: "+strings.Join(fedsu.WorkloadNames(), ", "))
		scheme     = flag.String("scheme", "fedsu", "sync strategy: "+strings.Join(fedsu.StrategyNames(), ", "))
		clients    = flag.Int("clients", 8, "number of emulated clients")
		rounds     = flag.Int("rounds", 60, "training rounds")
		iters      = flag.Int("iters", 5, "local SGD iterations per round (paper: 50)")
		batch      = flag.Int("batch", 8, "mini-batch size (paper: 32)")
		samples    = flag.Int("samples", 1024, "synthetic dataset size")
		scale      = flag.Int("scale", 0, "model width divisor (0 = per-workload default, 1 = paper scale)")
		seed       = flag.Int64("seed", 1, "random seed")
		tr         = flag.Float64("tr", 0.01, "FedSU linearity threshold T_R")
		ts         = flag.Float64("ts", 1.0, "FedSU error-feedback threshold T_S")
		theta      = flag.Float64("theta", 0.9, "FedSU EMA decay factor")
		csvPath    = flag.String("csv", "", "write per-round stats CSV to this path")
		evalEvery  = flag.Int("eval-every", 2, "evaluate the global model every n rounds")
		proxMu     = flag.Float64("prox", 0, "FedProx proximal coefficient (0 disables)")
		dtype      = flag.String("dtype", "float64", "compute precision: float64 (bit-identical legacy results) or float32 (half the memory bandwidth, lossless wire)")
		ckptPath   = flag.String("checkpoint", "", "save a checkpoint here after the final round")
		resumePath = flag.String("resume", "", "resume from a checkpoint before training")
		async      = flag.Bool("async", false, "buffered-async rounds: clients run as independent arrival processes; -rounds counts global applications")
		asyncK     = flag.Int("k", 0, "async buffer size: apply the global every K contributions (default clients/2)")
		staleness  = flag.Int("staleness", 8, "async: drop contributions more than this many versions behind (-1 = unlimited)")
		staleW     = flag.Float64("staleness-weight", 0.5, "async: per-version contribution weight decay in (0, 1]")
		eventThr   = flag.Float64("event-threshold", 0, "event-triggered uploads: contribute only when the L2 norm of accumulated change crosses this (0 disables)")
		population = flag.Int("population", 0, "registered device count; > 0 samples a -cohort-sized cohort per round instead of a fixed fleet")
		cohortSize = flag.Int("cohort", 0, "per-round cohort size in population mode (default: -clients)")
		fanout     = flag.Int("fanout", 0, "hierarchical aggregation-tree fanout in population mode (0 = flat fold; >= 2 = tree, bit-identical global)")
		compress   = flag.String("compress", "", "wire compression chain spec, e.g. topk,q4,rans (stages: topk, q2..q8, lowrank[N], rans; empty = default codec)")
	)
	flag.Parse()

	opts := fedsu.DefaultOptions()
	opts.TR, opts.TS, opts.Theta = *tr, *ts, *theta

	var acfg fedsu.AsyncConfig
	if *async {
		k := *asyncK
		if k <= 0 {
			k = *clients / 2
			if k < 1 {
				k = 1
			}
		}
		acfg = fedsu.AsyncConfig{K: k, MaxStaleness: *staleness, StalenessWeight: *staleW}
	}

	nclients := *clients
	if *population > 0 && *cohortSize > 0 {
		// In population mode the engine's client slots ARE the cohort.
		nclients = *cohortSize
	}

	sim, err := fedsu.NewSimulation(fedsu.SimulationConfig{
		Workload: *workload, Scheme: *scheme,
		Clients: nclients, Rounds: *rounds,
		LocalIters: *iters, BatchSize: *batch,
		Samples: *samples, ModelScale: *scale,
		EvalEvery: *evalEvery, Seed: *seed, FedSU: opts,
		ProxMu: *proxMu, DType: *dtype,
		Async: acfg, EventThreshold: *eventThr,
		Compress:   *compress,
		Population: *population, Fanout: *fanout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsu-sim:", err)
		os.Exit(1)
	}
	if *resumePath != "" {
		if err := sim.LoadCheckpoint(*resumePath); err != nil {
			fmt.Fprintln(os.Stderr, "fedsu-sim:", err)
			os.Exit(1)
		}
		fmt.Println("resumed from", *resumePath)
	}

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedsu-sim:", err)
			os.Exit(1)
		}
		defer csv.Close()
		fmt.Fprintln(csv, "round,sim_time_s,accuracy,loss,train_loss,sparsification,predictable,up_bytes,down_bytes")
	}

	fmt.Printf("%-6s %-10s %-9s %-9s %-9s %-8s %-8s\n",
		"round", "time(s)", "acc", "loss", "trainloss", "sparse", "predict")
	ctx := context.Background()
	emit := func(st fedsu.RoundStats) {
		accStr := "-"
		lossStr := "-"
		if st.Accuracy >= 0 {
			accStr = fmt.Sprintf("%.4f", st.Accuracy)
			lossStr = fmt.Sprintf("%.4f", st.Loss)
		}
		fmt.Printf("%-6d %-10.1f %-9s %-9s %-9.4f %-8.3f %-8.3f\n",
			st.Round, st.SimTime, accStr, lossStr, st.TrainLoss,
			st.SparsificationRatio, st.PredictableFraction)
		if csv != nil {
			fmt.Fprintf(csv, "%d,%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
				st.Round, st.SimTime, st.Accuracy, st.Loss, st.TrainLoss,
				st.SparsificationRatio, st.PredictableFraction,
				st.Traffic.UpBytes, st.Traffic.DownBytes)
		}
	}
	if *async {
		// Async rounds run through the engine's event loop (per-arrival
		// scheduling), not the per-round driver; stats arrive per global
		// application.
		stats, err := sim.Run(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedsu-sim:", err)
			os.Exit(1)
		}
		for _, st := range stats {
			emit(st)
		}
	} else {
		for i := 0; i < *rounds; i++ {
			st, err := sim.RunRound(ctx, (i+1)%*evalEvery == 0 || i == *rounds-1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fedsu-sim:", err)
				os.Exit(1)
			}
			emit(st)
		}
	}
	if *ckptPath != "" {
		if err := sim.SaveCheckpoint(*ckptPath); err != nil {
			fmt.Fprintln(os.Stderr, "fedsu-sim:", err)
			os.Exit(1)
		}
		fmt.Println("checkpoint saved to", *ckptPath)
	}
}
